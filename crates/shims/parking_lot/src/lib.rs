//! Offline drop-in subset of `parking_lot` backed by `std::sync`.
//!
//! The real crate's locks do not poison; this shim matches that by
//! recovering the guard from a poisoned std lock (the data is still
//! perfectly usable — poisoning only records that a panic happened
//! while the lock was held).

#![forbid(unsafe_code)]

use std::sync;

/// Mutual exclusion primitive (non-poisoning API, like `parking_lot`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Reader-writer lock (non-poisoning API, like `parking_lot`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock wrapping `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
