//! An interactive shell over an LDC store — drive the engine by hand and
//! watch the compaction machinery react.
//!
//! ```text
//! cargo run --release --example kv_shell            # in-memory simulated SSD
//! cargo run --release --example kv_shell -- /tmp/db # persisted on disk
//! ```
//!
//! Commands:
//! ```text
//! put <key> <value>     get <key>        del <key>
//! scan <start> [n]      fill <n>         stats
//! report                levels           verify
//! help                  quit
//! ```
//!
//! `stats` prints one-line counters; `report` prints the full LevelDB-style
//! engine report (levels, compactions, cache, per-op latencies, SSD wear).

use std::io::{self, BufRead, Write};
use std::sync::Arc;

use ldc::ssd::{DiskStorage, SsdDevice, StorageBackend};
use ldc::{LdcDb, Options};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut builder = LdcDb::builder().options(Options {
        memtable_bytes: 256 << 10,
        sstable_bytes: 256 << 10,
        l1_capacity_bytes: 1 << 20,
        ..Options::default()
    });
    if let Some(path) = std::env::args().nth(1) {
        let storage: Arc<dyn StorageBackend> =
            DiskStorage::open(path.clone(), SsdDevice::with_defaults())?;
        builder = builder.storage(storage);
        eprintln!("store persisted under {path}");
    } else {
        eprintln!("in-memory store (pass a directory to persist)");
    }
    let db = builder.build()?;
    eprintln!("ldc shell — `help` for commands");

    let stdin = io::stdin();
    let mut out = io::stdout();
    loop {
        out.write_all(b"ldc> ")?;
        out.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            [] => {}
            ["quit" | "exit"] => break,
            ["help"] => println!(
                "put <k> <v> | get <k> | del <k> | scan <start> [n] | \
                 fill <n> | stats | report | levels | verify | quit"
            ),
            ["put", key, value] => {
                db.put(key.as_bytes(), value.as_bytes())?;
                println!("ok");
            }
            ["get", key] => match db.get(key.as_bytes())? {
                Some(v) => println!("{}", String::from_utf8_lossy(&v)),
                None => println!("(not found)"),
            },
            ["del", key] => {
                db.delete(key.as_bytes())?;
                println!("ok");
            }
            ["scan", start] | ["scan", start, _] => {
                let n: usize = parts.get(2).and_then(|s| s.parse().ok()).unwrap_or(10);
                for (k, v) in db.scan(start.as_bytes(), n)? {
                    println!(
                        "{} = {}",
                        String::from_utf8_lossy(&k),
                        String::from_utf8_lossy(&v)
                    );
                }
            }
            ["fill", n] => {
                let n: u64 = n.parse().unwrap_or(10_000);
                for i in 0..n {
                    let key = format!("fill:{:012x}", i.wrapping_mul(0x9e3779b97f4a7c15));
                    db.put(key.as_bytes(), &vec![b'x'; 512])?;
                }
                db.drain_background();
                println!("inserted {n} records");
            }
            ["stats"] => {
                let s = db.stats();
                let io = db.device().io_stats();
                let wear = db.device().snapshot();
                println!(
                    "writes {} | gets {} | scans {} | flushes {} | links {} | \
                     ldc merges {} | stalls {}",
                    s.writes, s.gets, s.scans, s.flushes, s.links, s.ldc_merges, s.stalls
                );
                println!(
                    "compaction I/O {:.1} MiB read / {:.1} MiB written | \
                     space {:.1} MiB | virtual time {:.3} s | device WAF {:.3}",
                    io.compaction_read_bytes() as f64 / 1048576.0,
                    io.compaction_write_bytes() as f64 / 1048576.0,
                    db.space_bytes() as f64 / 1048576.0,
                    wear.now as f64 / 1e9,
                    wear.ftl.write_amplification(),
                );
            }
            ["report"] => print!("{}", db.stats_report()),
            ["levels"] => {
                let v = db.engine_ref().version();
                for level in 0..v.num_levels() {
                    if v.level_files(level) > 0 {
                        println!(
                            "L{level}: {} files, {:.2} MiB",
                            v.level_files(level),
                            v.level_bytes(level) as f64 / 1048576.0
                        );
                    }
                }
                if v.frozen_files() > 0 {
                    println!(
                        "frozen: {} files, {:.2} MiB, {} live slice links",
                        v.frozen_files(),
                        v.frozen_bytes() as f64 / 1048576.0,
                        v.total_slice_links()
                    );
                }
            }
            ["verify"] => match db.verify_integrity() {
                Ok(entries) => println!("ok — {entries} entries verified"),
                Err(e) => println!("CORRUPTION: {e}"),
            },
            other => println!("unknown command {other:?}; try `help`"),
        }
    }
    Ok(())
}
