//! Compaction framework: task vocabulary and the policy interface.
//!
//! The engine separates *decision* from *execution*. A
//! [`CompactionPolicy`] inspects the current [`Version`] and proposes one
//! [`CompactionTask`]; the database executes it (performing all I/O and
//! logging the version edit) and asks again until the tree is healthy.
//!
//! The task vocabulary covers both compaction styles in the paper:
//!
//! * [`CompactionTask::Merge`] / [`CompactionTask::TrivialMove`] — the
//!   traditional upper-level driven actions (UDC, LevelDB's behaviour);
//! * [`CompactionTask::Link`] / [`CompactionTask::LdcMerge`] — the two
//!   phases of lower-level driven compaction (LDC, Algorithm 1). `Link` is
//!   metadata-only; `LdcMerge` performs the actual I/O, driven by the lower
//!   file once it has accumulated enough slices.

mod size_tiered;
mod udc;

pub use size_tiered::SizeTieredPolicy;
pub use udc::UdcPolicy;

use crate::options::Options;
use crate::version::Version;

/// One unit of compaction work proposed by a policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompactionTask {
    /// Upper-level driven merge: `upper` files at `level` merge with
    /// `lower` files at `level + 1`; outputs land at `level + 1`.
    Merge {
        /// Source level of the upper inputs.
        level: usize,
        /// File numbers at `level`.
        upper: Vec<u64>,
        /// Overlapping file numbers at `level + 1`.
        lower: Vec<u64>,
    },
    /// Metadata-only move of `file` from `level` to `level + 1` (no key
    /// overlap below).
    TrivialMove {
        /// Current level of the file.
        level: usize,
        /// File number to move.
        file: u64,
    },
    /// LDC link phase: freeze `file` (at `level`) and attach one slice per
    /// overlapping file at `level + 1`. Metadata-only.
    Link {
        /// Level of the file to freeze.
        level: usize,
        /// File number to freeze and slice.
        file: u64,
    },
    /// LDC merge phase: rewrite `file` (at `level`) together with all its
    /// attached slices; outputs stay at `level`.
    LdcMerge {
        /// Level of the merge-target (lower) file.
        level: usize,
        /// File number whose slices have reached the threshold.
        file: u64,
    },
    /// Size-tiered merge (the lazy baseline, Cassandra-style, paper §V):
    /// combine several similar-sized Level-0 runs into one bigger Level-0
    /// run. Output stays at Level 0 as a single (possibly oversized) file.
    TieredMerge {
        /// Level-0 file numbers to combine.
        files: Vec<u64>,
    },
}

/// Read-only state handed to [`CompactionPolicy::pick`].
pub struct PickContext<'a> {
    /// Current file/frozen/link state.
    pub version: &'a Version,
    /// Engine options (fan-out, level capacities, ...).
    pub options: &'a Options,
    /// Per-level round-robin cursors (largest user key compacted so far).
    pub compact_pointers: &'a [Vec<u8>],
}

/// Chooses what to compact next.
pub trait CompactionPolicy: Send {
    /// Short policy name for reports ("udc", "ldc", ...).
    fn name(&self) -> &str;

    /// Proposes the next task, or `None` when the tree is healthy.
    fn pick(&mut self, ctx: &PickContext<'_>) -> Option<CompactionTask>;

    /// Lets adaptive policies observe the foreground workload mix.
    fn observe_op(&mut self, _is_write: bool) {}
}

/// LevelDB-style health scores: level 0 scores by file count relative to
/// the trigger; deeper levels by byte size relative to capacity. The last
/// level never triggers (nothing below it).
pub fn level_scores(version: &Version, options: &Options) -> Vec<f64> {
    let n = version.num_levels();
    let mut scores = vec![0.0; n];
    scores[0] = version.level_files(0) as f64 / options.l0_compaction_trigger as f64;
    for (level, score) in scores.iter_mut().enumerate().take(n - 1).skip(1) {
        *score = version.level_bytes(level) as f64 / options.level_capacity_bytes(level) as f64;
    }
    scores
}

/// The level most in need of compaction, if any score reaches 1.0.
pub fn pick_overfull_level(version: &Version, options: &Options) -> Option<usize> {
    let scores = level_scores(version, options);
    let (level, &score) = scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("scores are finite"))?;
    if score >= 1.0 {
        Some(level)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{encode_internal_key, ValueType};
    use crate::version::FileMeta;

    fn meta(number: u64, lo: &[u8], hi: &[u8], size: u64) -> FileMeta {
        FileMeta {
            number,
            size,
            smallest: encode_internal_key(lo, 1, ValueType::Value),
            largest: encode_internal_key(hi, 1, ValueType::Value),
            slices: Vec::new(),
        }
    }

    #[test]
    fn scores_reflect_fill() {
        let options = Options::default();
        let mut v = Version::new(4);
        // L0 at trigger -> score 1.0.
        for i in 0..options.l0_compaction_trigger as u64 {
            v.levels[0].push(meta(i + 1, b"a", b"z", 1000));
        }
        // L1 at half capacity.
        v.levels[1].push(meta(100, b"a", b"m", options.l1_capacity_bytes / 2));
        let scores = level_scores(&v, &options);
        assert!((scores[0] - 1.0).abs() < 1e-9);
        assert!((scores[1] - 0.5).abs() < 1e-9);
        assert_eq!(scores[3], 0.0, "last level never scores");
        assert_eq!(pick_overfull_level(&v, &options), Some(0));
    }

    #[test]
    fn healthy_tree_picks_nothing() {
        let options = Options::default();
        let mut v = Version::new(4);
        v.levels[0].push(meta(1, b"a", b"z", 1000));
        v.levels[1].push(meta(2, b"a", b"z", 1000));
        assert_eq!(pick_overfull_level(&v, &options), None);
    }

    #[test]
    fn deepest_overfull_level_wins_by_score() {
        let options = Options::default();
        let mut v = Version::new(4);
        // L1 at 3x capacity, L2 at 1.5x.
        v.levels[1].push(meta(1, b"a", b"m", options.level_capacity_bytes(1) * 3));
        v.levels[2].push(meta(
            2,
            b"a",
            b"m",
            (options.level_capacity_bytes(2) * 3) / 2,
        ));
        assert_eq!(pick_overfull_level(&v, &options), Some(1));
    }
}
