//! Rule `panic_safety`: the production I/O and recovery paths must not
//! panic — corruption and I/O failure are *expected* inputs there and
//! must surface as `Result`/`Error::Corruption`, not process death.
//!
//! Existing debt is recorded in a committed baseline
//! (`crates/lint/baseline_panic.txt`) and may only shrink: a file whose
//! count rises above its baseline fails the lint; a file that improves
//! produces an advisory asking for the baseline to be tightened
//! (`ldc-lint --workspace --update-baseline` regenerates it).

use std::collections::BTreeMap;

use crate::diag::Diagnostic;
use crate::lexer::SourceView;

/// Stable rule id.
pub const RULE: &str = "panic_safety";

/// Files on the production I/O / recovery path (workspace-relative).
pub const SCOPED_FILES: &[&str] = &[
    "crates/lsm/src/wal.rs",
    "crates/lsm/src/version.rs",
    "crates/lsm/src/db.rs",
    "crates/lsm/src/cache.rs",
    "crates/lsm/src/table/mod.rs",
    "crates/lsm/src/table/builder.rs",
    "crates/lsm/src/table/reader.rs",
    "crates/lsm/src/retry.rs",
    "crates/lsm/src/scrub.rs",
    "crates/lsm/src/repair.rs",
    "crates/ssd/src/disk.rs",
    "crates/ssd/src/storage.rs",
    "crates/server/src/server.rs",
    "crates/client/src/client.rs",
];

/// Panicking calls flagged in scope.
const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Per-file counts of the two panic-site categories.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// `unwrap`/`expect`/`panic!`-family sites.
    pub panics: usize,
    /// Slice/array index expressions (`x[i]`, `x[a..b]`) — each one is an
    /// implicit bounds-check panic.
    pub indexes: usize,
}

/// The committed ratchet: file → allowed counts.
pub type Baseline = BTreeMap<String, Counts>;

/// Is `path` (workspace-relative) in this rule's scope?
pub fn in_scope(path: &str) -> bool {
    SCOPED_FILES.contains(&path)
}

/// Counts non-test, non-suppressed panic sites in one file, returning the
/// counts and the line of each site (for reporting un-baselined files).
pub fn count_sites(view: &SourceView) -> (Counts, Vec<(usize, String)>) {
    let mut counts = Counts::default();
    let mut sites = Vec::new();
    for &tok in PANIC_TOKENS {
        let mut from = 0;
        while let Some(rel) = view.code[from..].find(tok) {
            let at = from + rel;
            from = at + tok.len();
            let line = view.line_of(at);
            if view.is_test_line(line) || view.is_suppressed(line, RULE) {
                continue;
            }
            counts.panics += 1;
            sites.push((
                line,
                format!("panicking call `{}`", tok.trim_matches(['.', '('])),
            ));
        }
    }
    for at in index_sites(&view.code) {
        let line = view.line_of(at);
        if view.is_test_line(line) || view.is_suppressed(line, RULE) {
            continue;
        }
        counts.indexes += 1;
        sites.push((
            line,
            "index expression (implicit bounds-check panic)".to_string(),
        ));
    }
    (counts, sites)
}

/// Offsets of `[` tokens that begin an index expression: the previous
/// non-space character is an identifier character, `)` or `]`, and not a
/// macro bang. Type positions (`&[u8]`), array literals (`[0u8; 4]`),
/// attributes (`#[...]`) and `vec![...]` never match.
fn index_sites(code: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        let mut j = i;
        while j > 0 {
            j -= 1;
            let p = bytes[j];
            if p.is_ascii_whitespace() {
                continue;
            }
            if p.is_ascii_alphanumeric() || p == b'_' || p == b')' || p == b']' {
                out.push(i);
            }
            break;
        }
    }
    out
}

/// Checks every in-scope file against the baseline. `files` maps a
/// workspace-relative path to its lexed view.
pub fn check(files: &[(String, SourceView)], baseline: &Baseline) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (path, view) in files {
        if !in_scope(path) {
            continue;
        }
        let (counts, sites) = count_sites(view);
        let allowed = baseline.get(path).copied();
        match allowed {
            Some(allowed) => {
                if counts.panics > allowed.panics {
                    out.push(Diagnostic::error(
                        path,
                        0,
                        RULE,
                        format!(
                            "panic-site ratchet violated: {} unwrap/expect/panic! sites, baseline allows {}",
                            counts.panics, allowed.panics
                        ),
                        "convert the new sites to `Result`/`Error::Corruption` (or suppress each \
                         with `// ldc-lint: allow(panic_safety) — <invariant>`); the baseline only \
                         ratchets down",
                    ));
                }
                if counts.indexes > allowed.indexes {
                    out.push(Diagnostic::error(
                        path,
                        0,
                        RULE,
                        format!(
                            "index-site ratchet violated: {} index expressions, baseline allows {}",
                            counts.indexes, allowed.indexes
                        ),
                        "use `.get(..)`/`.get_mut(..)` and surface a Corruption error on miss",
                    ));
                }
                if counts.panics < allowed.panics || counts.indexes < allowed.indexes {
                    out.push(Diagnostic::info(
                        path,
                        0,
                        RULE,
                        format!(
                            "baseline is stale ({} panics / {} indexes recorded, {} / {} found)",
                            allowed.panics, allowed.indexes, counts.panics, counts.indexes
                        ),
                        "run `cargo run -p ldc-lint -- --workspace --update-baseline` to lock in \
                         the improvement",
                    ));
                }
            }
            None => {
                // No debt allowance: every site is an error.
                for (line, what) in sites {
                    out.push(Diagnostic::error(
                        path,
                        line,
                        RULE,
                        format!("{what} on the production I/O path"),
                        "return `Result` (use `Error::Corruption` for malformed on-disk data) or \
                         suppress with `// ldc-lint: allow(panic_safety) — <invariant>`",
                    ));
                }
            }
        }
    }
    // Baseline entries whose file left scope or disappeared.
    for path in baseline.keys() {
        if !files.iter().any(|(p, _)| p == path) {
            out.push(Diagnostic::info(
                path,
                0,
                RULE,
                "baseline entry has no matching file",
                "remove the entry (or run --update-baseline)",
            ));
        }
    }
    out
}

/// Serialises a baseline in the committed format.
pub fn format_baseline(b: &Baseline) -> String {
    let mut out = String::from(
        "# ldc-lint panic-safety baseline — existing debt on the production I/O paths.\n\
         # Counts may only go DOWN. Regenerate with:\n\
         #   cargo run -p ldc-lint -- --workspace --update-baseline\n",
    );
    for (path, c) in b {
        if c.panics > 0 || c.indexes > 0 {
            out.push_str(&format!(
                "{path} panics={} indexes={}\n",
                c.panics, c.indexes
            ));
        }
    }
    out
}

/// Parses the committed baseline format. Unknown lines are errors so the
/// ratchet cannot be silently defeated by a malformed file.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let mut out = Baseline::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let path = parts
            .next()
            .ok_or(format!("baseline line {}: empty", i + 1))?;
        let mut counts = Counts::default();
        for kv in parts {
            let (k, v) = kv
                .split_once('=')
                .ok_or(format!("baseline line {}: bad field `{kv}`", i + 1))?;
            let v: usize = v
                .parse()
                .map_err(|_| format!("baseline line {}: bad count `{v}`", i + 1))?;
            match k {
                "panics" => counts.panics = v,
                "indexes" => counts.indexes = v,
                _ => return Err(format!("baseline line {}: unknown field `{k}`", i + 1)),
            }
        }
        out.insert(path.to_string(), counts);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(src: &str) -> SourceView {
        SourceView::new(src)
    }

    #[test]
    fn counts_panics_and_indexes_outside_tests() {
        let src = "fn f(v: &[u8]) -> u8 { let x = v[0]; maybe().unwrap(); panic!(\"no\"); x }\n\
                   #[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\n";
        let (c, _) = count_sites(&view(src));
        assert_eq!(c.panics, 2);
        assert_eq!(c.indexes, 1);
    }

    #[test]
    fn type_and_literal_brackets_are_not_indexing() {
        let src = "fn f(a: &[u8], b: [u8; 4]) { let v = vec![1]; let _ = (a, b, v); }";
        let (c, _) = count_sites(&view(src));
        assert_eq!(c.indexes, 0);
    }

    #[test]
    fn ratchet_up_fails_down_informs() {
        let path = "crates/lsm/src/wal.rs".to_string();
        let files = vec![(path.clone(), view("fn f() { a.unwrap(); b.unwrap(); }"))];
        let mut b = Baseline::new();
        b.insert(
            path.clone(),
            Counts {
                panics: 1,
                indexes: 0,
            },
        );
        let d = check(&files, &b);
        assert!(d.iter().any(|d| d.message.contains("ratchet violated")));
        b.insert(
            path,
            Counts {
                panics: 5,
                indexes: 0,
            },
        );
        let d = check(&files, &b);
        assert!(d.iter().all(|d| d.severity == crate::diag::Severity::Info));
    }

    #[test]
    fn unbaselined_file_reports_each_site() {
        let files = vec![(
            "crates/lsm/src/cache.rs".to_string(),
            view("fn f() { a.expect(\"x\"); }"),
        )];
        let d = check(&files, &Baseline::new());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn baseline_roundtrip() {
        let mut b = Baseline::new();
        b.insert(
            "crates/lsm/src/db.rs".into(),
            Counts {
                panics: 3,
                indexes: 7,
            },
        );
        let text = format_baseline(&b);
        assert_eq!(parse_baseline(&text).unwrap(), b);
        assert!(parse_baseline("garbage line here").is_err());
    }
}
