// determinism_taint fixture — every sink call is fed deterministic data,
// plus one intentional host-time flow carrying an allow annotation.
// Must produce zero findings.

fn wal_flow(w: &mut LogWriter, seq: u64) {
    let buf = seq.to_le_bytes();
    LogWriter::add_record(w, &buf);
}

fn sstable_flow(b: &mut TableBuilder, seq: u64) {
    let val = seq.to_le_bytes();
    TableBuilder::add(b, b"key", &val);
}

fn manifest_flow(vs: &mut VersionSet, seq: u64) {
    VersionSet::log_and_apply(vs, seq);
}

fn clock_flow(c: &VirtualClock) {
    let delta = 42;
    c.advance(delta);
}

fn wire_flow(req_id: u64) {
    encode_request(req_id, 0);
}

fn bench_flow(r: &ClosedResult, seed: u64) {
    ClosedResult::json(r, seed);
}

fn annotated_flow(w: &mut LogWriter) {
    let stamp = Instant::now().elapsed().as_nanos() as u64;
    let buf = stamp.to_le_bytes();
    // ldc-lint: allow(determinism_taint) — fixture: intentional metadata flow
    LogWriter::add_record(w, &buf);
}
