//! Full-stack persistence on the real file system: the store, running over
//! [`DiskStorage`], must survive process-style restarts with its LDC state
//! intact.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ldc::ssd::{DiskStorage, SsdDevice, StorageBackend};
use ldc::{LdcDb, Options};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

struct TempRoot(PathBuf);

impl TempRoot {
    fn new() -> Self {
        TempRoot(std::env::temp_dir().join(format!(
            "ldc-db-disk-{}-{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        )))
    }
}

impl Drop for TempRoot {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn open(root: &TempRoot, udc: bool) -> LdcDb {
    let storage: Arc<dyn StorageBackend> =
        DiskStorage::open(root.0.clone(), SsdDevice::with_defaults()).unwrap();
    let mut builder = LdcDb::builder()
        .options(Options {
            memtable_bytes: 8 << 10,
            sstable_bytes: 8 << 10,
            l1_capacity_bytes: 32 << 10,
            block_bytes: 1 << 10,
            ..Options::default()
        })
        .storage(storage);
    if udc {
        builder = builder.udc_baseline();
    }
    builder.build().unwrap()
}

fn key(i: u32) -> Vec<u8> {
    format!("{:08x}", i.wrapping_mul(0x9e37_79b9)).into_bytes()
}

#[test]
fn store_survives_disk_reopen_with_ldc_state() {
    let root = TempRoot::new();
    let n = 1200u32;
    {
        let db = open(&root, false);
        for i in 0..n {
            db.put(&key(i), format!("value-{i}").as_bytes()).unwrap();
        }
        db.delete(&key(7)).unwrap();
        let stats = db.stats();
        assert!(stats.flushes > 0);
        assert!(stats.links > 0, "want live LDC activity on disk");
    } // "crash"
      // Files really are on disk.
    let on_disk: Vec<String> = fs::read_dir(&root.0)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert!(on_disk.iter().any(|f| f.ends_with(".sst")), "{on_disk:?}");
    assert!(on_disk.iter().any(|f| f.starts_with("MANIFEST")));
    assert!(on_disk.iter().any(|f| f == "CURRENT"));

    let db = open(&root, false);
    db.engine_ref().version().check_invariants().unwrap();
    for i in (0..n).step_by(61) {
        let expect = if i == 7 {
            None
        } else {
            Some(format!("value-{i}").into_bytes())
        };
        assert_eq!(db.get(&key(i)).unwrap(), expect, "key {i}");
    }
    // Keep working after recovery.
    for i in n..n + 300 {
        db.put(&key(i), b"post-recovery").unwrap();
    }
    assert_eq!(
        db.get(&key(n + 1)).unwrap(),
        Some(b"post-recovery".to_vec())
    );
}

/// The generation test from `crash_recovery.rs`, ported to the real file
/// system: several sessions each write a slab of puts and deletes, then
/// "crash" (drop without shutdown); the final reopen must match the
/// in-memory model exactly, for LDC and the UDC baseline alike.
#[test]
fn reopen_preserves_everything_across_generations_on_disk() {
    fn value(k: u32, session: u32) -> Vec<u8> {
        let mut out = format!("v{session:05}k{k:05}").into_bytes();
        out.resize(160, b'.');
        out
    }
    for udc in [false, true] {
        let root = TempRoot::new();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for session in 0u32..4 {
            let db = open(&root, udc);
            for k in 0..300u32 {
                if (k + session) % 11 == 0 {
                    db.delete(&key(k)).unwrap();
                    model.remove(&key(k));
                } else {
                    db.put(&key(k), &value(k, session)).unwrap();
                    model.insert(key(k), value(k, session));
                }
            }
            // Spot-check inside the session too.
            for k in (0..300u32).step_by(41) {
                assert_eq!(db.get(&key(k)).unwrap().as_ref(), model.get(&key(k)));
            }
        } // each drop is a crash
        let db = open(&root, udc);
        db.engine_ref().version().check_invariants().unwrap();
        let all = db.scan(b"", usize::MAX).unwrap();
        let want: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(a, b)| (a.clone(), b.clone())).collect();
        assert_eq!(all, want, "udc={udc}");
    }
}

#[test]
fn udc_store_on_disk_roundtrip() {
    let root = TempRoot::new();
    {
        let db = open(&root, true);
        for i in 0..800u32 {
            db.put(&key(i), b"v").unwrap();
        }
    }
    let db = open(&root, true);
    for i in (0..800u32).step_by(97) {
        assert_eq!(db.get(&key(i)).unwrap(), Some(b"v".to_vec()));
    }
}
