//! A fault-injecting [`StorageBackend`] decorator.
//!
//! [`FaultStorage`] wraps any backend and perturbs it according to a
//! [`FaultPlan`]: it can kill the power on the Nth mutating operation
//! (discarding un-synced bytes, optionally tearing the last write at byte
//! granularity), fail operations with injected I/O errors, and flip
//! individual bits in stored files. Every choice is drawn from a seeded
//! generator, so a `(seed, plan)` pair replays the exact same fault
//! sequence — the property the chaos harness builds on.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use ldc_obs::{Event, EventKind, SharedSink};
use ldc_ssd::{IoClass, SsdDevice, SsdError, SsdResult, StorageBackend};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::plan::FaultPlan;

/// What a power cycle did to the files underneath.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PowerCycleReport {
    /// Files that lost at least one byte.
    pub files_truncated: u32,
    /// Total un-synced bytes discarded.
    pub bytes_discarded: u64,
}

struct FaultState {
    rng: SmallRng,
    /// Crash arm; cleared by [`FaultStorage::power_cycle`] so the next
    /// incarnation (recovery) runs clean.
    armed_crash: Option<u64>,
    /// Injected-error probability; also cleared by `power_cycle`.
    io_error_prob: f64,
    /// Mutating operations observed so far (1-based after increment).
    ops: u64,
    powered_off: bool,
    injected_errors: u64,
    /// Transient read failures already delivered, per file.
    transient_seen: HashMap<String, u32>,
    /// Human-readable fault journal, for failure reports.
    log: Vec<String>,
}

/// Per-crash random context handed to the operation that trips the crash.
struct CrashCtx {
    rng: SmallRng,
    torn: bool,
}

/// Deterministic fault-injecting decorator over a [`StorageBackend`].
///
/// Reads and mutations are refused once the power is off; the harness
/// calls [`FaultStorage::power_cycle`] to model the reboot (un-synced
/// data is discarded, the crash arm is cleared) before reopening.
pub struct FaultStorage {
    inner: Arc<dyn StorageBackend>,
    plan: FaultPlan,
    state: Mutex<FaultState>,
    sink: Mutex<Option<SharedSink>>,
}

impl FaultStorage {
    /// Wraps `inner`, scheduling faults per `plan`.
    pub fn new(inner: Arc<dyn StorageBackend>, plan: FaultPlan) -> Arc<Self> {
        Arc::new(Self {
            inner,
            state: Mutex::new(FaultState {
                rng: SmallRng::seed_from_u64(plan.seed),
                armed_crash: plan.crash_after_ops,
                io_error_prob: plan.io_error_prob,
                ops: 0,
                powered_off: false,
                injected_errors: 0,
                transient_seen: HashMap::new(),
                log: Vec::new(),
            }),
            plan,
            sink: Mutex::new(None),
        })
    }

    /// The plan this storage was built with (unchanged by `power_cycle`;
    /// print it to replay the run).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Routes a [`EventKind::FaultInjected`] event to `sink` for every
    /// fault this storage injects from now on.
    pub fn set_event_sink(&self, sink: SharedSink) {
        *self.sink.lock() = Some(sink);
    }

    /// Mutating operations observed so far.
    pub fn mutating_ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// Injected I/O errors so far.
    pub fn injected_errors(&self) -> u64 {
        self.state.lock().injected_errors
    }

    /// Whether the simulated power is currently off.
    pub fn powered_off(&self) -> bool {
        self.state.lock().powered_off
    }

    /// The fault journal: one line per injected fault.
    pub fn fault_log(&self) -> Vec<String> {
        self.state.lock().log.clone()
    }

    /// Disarms the crash point and error injection without touching the
    /// stored bytes — models a clean process restart (page cache intact),
    /// as opposed to [`FaultStorage::power_cycle`]'s power loss.
    pub fn disarm(&self) {
        let mut state = self.state.lock();
        state.armed_crash = None;
        state.io_error_prob = 0.0;
        state.powered_off = false;
    }

    /// Models the reboot after a power loss: discards un-synced bytes
    /// from every file (tearing the tail at a seed-chosen byte when the
    /// plan allows torn writes), restores power, and disarms the crash
    /// and error injection so recovery runs clean.
    pub fn power_cycle(&self) -> SsdResult<PowerCycleReport> {
        let mut state = self.state.lock();
        state.powered_off = false;
        state.armed_crash = None;
        state.io_error_prob = 0.0;
        let mut report = PowerCycleReport::default();
        // `list` is sorted, so the rng draws stay deterministic.
        for name in self.inner.list() {
            let size = self.inner.size(&name)?;
            let synced = self.inner.synced_len(&name)?;
            if size <= synced {
                continue;
            }
            let survive = if self.plan.torn_writes {
                synced + state.rng.gen_range(0..(size - synced + 1))
            } else {
                synced
            };
            if survive < size {
                self.inner.truncate(&name, survive)?;
                report.files_truncated += 1;
                report.bytes_discarded += size - survive;
                state
                    .log
                    .push(format!("power_cycle: {name} cut {size} -> {survive}"));
            }
        }
        Ok(report)
    }

    /// Flips one seed-chosen bit of `name` in place, returning the
    /// `(byte offset, bit index)` it picked.
    pub fn flip_bit(&self, name: &str) -> SsdResult<(u64, u8)> {
        let data = self.inner.read_all(name, IoClass::Other)?;
        if data.is_empty() {
            return Err(SsdError::InvalidArgument(format!(
                "cannot flip a bit in empty file {name}"
            )));
        }
        let (offset, bit, op);
        {
            let mut state = self.state.lock();
            offset = state.rng.gen_range(0..data.len() as u64);
            bit = state.rng.gen_range(0..8u8);
            op = state.ops;
            state
                .log
                .push(format!("bit_flip: {name} byte {offset} bit {bit}"));
        }
        let mut bytes = data.to_vec();
        bytes[offset as usize] ^= 1 << bit;
        self.inner.write_file(name, &bytes, IoClass::Other)?;
        self.emit_fault(op);
        Ok((offset, bit))
    }

    fn emit_fault(&self, op_index: u64) {
        if let Some(sink) = &*self.sink.lock() {
            if sink.enabled() {
                let now = self.inner.device().clock().now();
                sink.record(Event::span(EventKind::FaultInjected, now, now).bytes(op_index, 0));
            }
        }
    }

    fn power_off_error() -> SsdError {
        SsdError::Io("injected fault: power is off".to_string())
    }

    fn power_loss_error(op: u64, what: &str) -> SsdError {
        SsdError::Io(format!("injected fault: power loss at op {op} ({what})"))
    }

    /// Gate every read through the power switch and the transient-failure
    /// schedule: the first `transient_read_failures` reads of each file
    /// fail with [`SsdError::TransientIo`], then the file heals.
    fn read_gate(&self, name: &str) -> SsdResult<()> {
        let mut state = self.state.lock();
        if state.powered_off {
            return Err(Self::power_off_error());
        }
        if self.plan.transient_read_failures > 0 {
            let seen = state.transient_seen.entry(name.to_string()).or_insert(0);
            if *seen < self.plan.transient_read_failures {
                *seen += 1;
                let n = *seen;
                let op = state.ops;
                state.injected_errors += 1;
                state.log.push(format!(
                    "transient_read: {name} failure {n}/{}",
                    self.plan.transient_read_failures
                ));
                drop(state);
                self.emit_fault(op);
                return Err(SsdError::TransientIo(format!(
                    "injected transient read failure {n} on {name}"
                )));
            }
        }
        Ok(())
    }

    /// Gate for mutating operations. Returns `Ok(None)` to proceed
    /// normally, `Ok(Some(ctx))` when this operation is the crash point
    /// (the caller applies its op-specific partial effect, then returns
    /// [`FaultStorage::power_loss_error`]), or `Err` when the power is
    /// already off / an I/O error is injected.
    fn mutate_gate(&self, what: &str, name: &str) -> SsdResult<Option<CrashCtx>> {
        let mut state = self.state.lock();
        if state.powered_off {
            return Err(Self::power_off_error());
        }
        state.ops += 1;
        let op = state.ops;
        let io_error_prob = state.io_error_prob;
        if io_error_prob > 0.0 && state.rng.gen_bool(io_error_prob) {
            state.injected_errors += 1;
            state.log.push(format!("io_error: op {op} {what} {name}"));
            drop(state);
            self.emit_fault(op);
            return Err(SsdError::Io(format!(
                "injected io error at op {op} ({what} {name})"
            )));
        }
        if state.armed_crash == Some(op) {
            state.powered_off = true;
            state.log.push(format!("crash: op {op} {what} {name}"));
            let ctx = CrashCtx {
                rng: SmallRng::seed_from_u64(state.rng.next_u64()),
                torn: self.plan.torn_writes,
            };
            drop(state);
            self.emit_fault(op);
            return Ok(Some(ctx));
        }
        Ok(None)
    }
}

impl StorageBackend for FaultStorage {
    fn write_file(&self, name: &str, data: &[u8], class: IoClass) -> SsdResult<()> {
        match self.mutate_gate("write_file", name)? {
            None => self.inner.write_file(name, data, class),
            Some(mut ctx) => {
                // Sealed writes are atomic: power loss leaves the file
                // fully present or absent, never torn.
                if ctx.rng.gen_bool(0.5) {
                    self.inner.write_file(name, data, class)?;
                }
                Err(Self::power_loss_error(self.mutating_ops(), "write_file"))
            }
        }
    }

    fn append(&self, name: &str, data: &[u8], class: IoClass) -> SsdResult<()> {
        match self.mutate_gate("append", name)? {
            None => self.inner.append(name, data, class),
            Some(mut ctx) => {
                // The interrupted append may leave a strict prefix in the
                // page cache; whether any of it survives is then decided
                // by `power_cycle` (it is un-synced either way).
                if ctx.torn && !data.is_empty() {
                    let keep = ctx.rng.gen_range(0..data.len());
                    if keep > 0 {
                        self.inner.append(name, &data[..keep], class)?;
                    }
                }
                Err(Self::power_loss_error(self.mutating_ops(), "append"))
            }
        }
    }

    fn read(&self, name: &str, offset: u64, len: u64, class: IoClass) -> SsdResult<Bytes> {
        self.read_gate(name)?;
        self.inner.read(name, offset, len, class)
    }

    fn read_sequential(
        &self,
        name: &str,
        offset: u64,
        len: u64,
        class: IoClass,
    ) -> SsdResult<Bytes> {
        self.read_gate(name)?;
        self.inner.read_sequential(name, offset, len, class)
    }

    fn size(&self, name: &str) -> SsdResult<u64> {
        self.inner.size(name)
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }

    fn delete(&self, name: &str) -> SsdResult<()> {
        match self.mutate_gate("delete", name)? {
            None => self.inner.delete(name),
            Some(mut ctx) => {
                // Metadata ops are atomic: applied or not.
                if ctx.rng.gen_bool(0.5) {
                    self.inner.delete(name)?;
                }
                Err(Self::power_loss_error(self.mutating_ops(), "delete"))
            }
        }
    }

    fn rename(&self, from: &str, to: &str) -> SsdResult<()> {
        match self.mutate_gate("rename", from)? {
            None => self.inner.rename(from, to),
            Some(mut ctx) => {
                if ctx.rng.gen_bool(0.5) {
                    self.inner.rename(from, to)?;
                }
                Err(Self::power_loss_error(self.mutating_ops(), "rename"))
            }
        }
    }

    fn sync(&self, name: &str) -> SsdResult<()> {
        match self.mutate_gate("sync", name)? {
            // A crashed sync durably flushed nothing: the data stays
            // un-synced and power_cycle decides its fate.
            None => self.inner.sync(name),
            Some(_) => Err(Self::power_loss_error(self.mutating_ops(), "sync")),
        }
    }

    fn synced_len(&self, name: &str) -> SsdResult<u64> {
        self.inner.synced_len(name)
    }

    fn truncate(&self, name: &str, len: u64) -> SsdResult<()> {
        match self.mutate_gate("truncate", name)? {
            None => self.inner.truncate(name, len),
            Some(mut ctx) => {
                if ctx.rng.gen_bool(0.5) {
                    self.inner.truncate(name, len)?;
                }
                Err(Self::power_loss_error(self.mutating_ops(), "truncate"))
            }
        }
    }

    fn link_file(&self, from: &str, to: &str, class: IoClass) -> SsdResult<()> {
        match self.mutate_gate("link_file", to)? {
            None => self.inner.link_file(from, to, class),
            Some(mut ctx) => {
                // Like write_file and rename, a link is a metadata op:
                // power loss leaves it fully applied or not at all.
                if ctx.rng.gen_bool(0.5) {
                    self.inner.link_file(from, to, class)?;
                }
                Err(Self::power_loss_error(self.mutating_ops(), "link_file"))
            }
        }
    }

    fn list_dir(&self, prefix: &str) -> Vec<String> {
        self.inner.list_dir(prefix)
    }

    fn list(&self) -> Vec<String> {
        self.inner.list()
    }

    fn device(&self) -> Arc<SsdDevice> {
        self.inner.device()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldc_ssd::{MemStorage, SsdConfig};

    fn mem() -> Arc<MemStorage> {
        MemStorage::new(SsdDevice::new(SsdConfig::tiny_for_tests()))
    }

    #[test]
    fn benign_plan_is_transparent() {
        let fault = FaultStorage::new(mem(), FaultPlan::new(1));
        fault.write_file("a.sst", b"hello", IoClass::Other).unwrap();
        fault.append("w.log", b"tail", IoClass::WalWrite).unwrap();
        fault.sync("w.log").unwrap();
        assert_eq!(
            fault.read_all("a.sst", IoClass::Other).unwrap().as_ref(),
            b"hello"
        );
        assert_eq!(fault.list(), vec!["a.sst", "w.log"]);
        assert_eq!(fault.mutating_ops(), 3);
        assert!(fault.fault_log().is_empty());
    }

    #[test]
    fn crash_trips_on_exact_op_and_stays_down() {
        let fault = FaultStorage::new(
            mem(),
            FaultPlan {
                crash_after_ops: Some(2),
                ..FaultPlan::new(7)
            },
        );
        fault.append("w.log", b"one", IoClass::WalWrite).unwrap();
        assert!(matches!(
            fault.append("w.log", b"two", IoClass::WalWrite),
            Err(SsdError::Io(_))
        ));
        assert!(fault.powered_off());
        // Everything is refused until the power cycle.
        assert!(fault.append("w.log", b"three", IoClass::WalWrite).is_err());
        assert!(fault.read_all("w.log", IoClass::Other).is_err());
        let report = fault.power_cycle().unwrap();
        // Nothing was synced, so the whole file is discarded.
        assert_eq!(fault.size("w.log").unwrap(), 0);
        assert_eq!(report.bytes_discarded, 3);
        // Power restored; writes flow again.
        fault.append("w.log", b"fresh", IoClass::WalWrite).unwrap();
        assert_eq!(
            fault.read_all("w.log", IoClass::Other).unwrap().as_ref(),
            b"fresh"
        );
    }

    #[test]
    fn power_cycle_preserves_synced_prefix() {
        let fault = FaultStorage::new(
            mem(),
            FaultPlan {
                crash_after_ops: Some(4),
                ..FaultPlan::new(3)
            },
        );
        fault
            .append("w.log", b"durable", IoClass::WalWrite)
            .unwrap();
        fault.sync("w.log").unwrap();
        fault
            .append("w.log", b"-volatile", IoClass::WalWrite)
            .unwrap();
        assert!(fault.append("w.log", b"boom", IoClass::WalWrite).is_err());
        fault.power_cycle().unwrap();
        assert_eq!(
            fault.read_all("w.log", IoClass::Other).unwrap().as_ref(),
            b"durable"
        );
        // Sealed files always survive in full.
        fault
            .write_file("t.sst", b"sealed", IoClass::Other)
            .unwrap();
        fault.power_cycle().unwrap();
        assert_eq!(
            fault.read_all("t.sst", IoClass::Other).unwrap().as_ref(),
            b"sealed"
        );
    }

    #[test]
    fn torn_writes_keep_at_most_a_strict_prefix() {
        for seed in 0..32 {
            let fault = FaultStorage::new(mem(), FaultPlan::crash_at(seed, 2));
            fault.append("w.log", b"synced", IoClass::WalWrite).unwrap();
            // Op 2 is the sync: it fails, leaving the bytes volatile.
            assert!(fault.sync("w.log").is_err());
            fault.power_cycle().unwrap();
            let data = fault.read_all("w.log", IoClass::Other).unwrap();
            assert!(
                b"synced".starts_with(data.as_ref()),
                "seed {seed}: survivor {:?} is not a prefix",
                data.as_ref()
            );
        }
    }

    #[test]
    fn io_errors_are_injected_and_counted() {
        let fault = FaultStorage::new(mem(), FaultPlan::io_errors(11, 0.5));
        let mut failed = 0;
        for i in 0..64 {
            if fault
                .write_file(&format!("f{i}"), b"x", IoClass::Other)
                .is_err()
            {
                failed += 1;
            }
        }
        assert!(failed > 0, "no errors injected at p=0.5");
        assert!(failed < 64, "every op failed at p=0.5");
        assert_eq!(fault.injected_errors(), failed);
        assert_eq!(fault.fault_log().len() as u64, failed);
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let fault = FaultStorage::new(mem(), FaultPlan::new(5));
        let original = vec![0u8; 64];
        fault.write_file("f", &original, IoClass::Other).unwrap();
        let (offset, bit) = fault.flip_bit("f").unwrap();
        let flipped = fault.read_all("f", IoClass::Other).unwrap();
        for (i, (a, b)) in original.iter().zip(flipped.iter()).enumerate() {
            if i as u64 == offset {
                assert_eq!(*b, a ^ (1 << bit));
            } else {
                assert_eq!(a, b);
            }
        }
        assert!(fault.flip_bit("missing").is_err());
    }

    #[test]
    fn transient_reads_fail_then_heal_per_file() {
        let fault = FaultStorage::new(mem(), FaultPlan::transient_reads(13, 2));
        fault.write_file("a", b"aaaa", IoClass::Other).unwrap();
        fault.write_file("b", b"bbbb", IoClass::Other).unwrap();
        // Each file fails exactly twice, independently, then heals.
        for name in ["a", "b"] {
            for _ in 0..2 {
                assert!(matches!(
                    fault.read(name, 0, 4, IoClass::UserRead),
                    Err(SsdError::TransientIo(_))
                ));
            }
            assert!(fault.read(name, 0, 4, IoClass::UserRead).is_ok());
            assert!(fault.read(name, 0, 4, IoClass::UserRead).is_ok());
        }
        assert_eq!(fault.injected_errors(), 4);
        assert_eq!(fault.fault_log().len(), 4);
    }

    #[test]
    fn same_seed_same_faults() {
        let run = |seed| {
            let fault = FaultStorage::new(
                mem(),
                FaultPlan {
                    crash_after_ops: Some(5),
                    torn_writes: true,
                    ..FaultPlan::new(seed)
                },
            );
            for i in 0.. {
                if fault
                    .append(
                        "w.log",
                        format!("record-{i:04}").as_bytes(),
                        IoClass::WalWrite,
                    )
                    .is_err()
                {
                    break;
                }
            }
            fault.power_cycle().unwrap();
            (
                fault.read_all("w.log", IoClass::Other).unwrap().to_vec(),
                fault.fault_log(),
            )
        };
        assert_eq!(run(99), run(99));
        // A different seed tears at a different byte (overwhelmingly).
        assert_ne!(run(99).0, run(100).0);
    }
}
