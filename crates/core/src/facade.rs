//! High-level entry points: build an LDC (or baseline UDC) store in a few
//! lines.
//!
//! ```
//! use ldc_core::LdcDb;
//!
//! let db = LdcDb::builder().build().unwrap();
//! db.put(b"user:42", b"ada").unwrap();
//! assert_eq!(db.get(b"user:42").unwrap(), Some(b"ada".to_vec()));
//! ```

use std::sync::Arc;

use ldc_lsm::compaction::{CompactionPolicy, UdcPolicy};
use ldc_lsm::db::{Db, DbStats};
use ldc_lsm::RecoverySummary;
use ldc_lsm::{CacheCounters, Options, PinnedValue, Result};
use ldc_obs::{MetricsRegistry, NoopSink, SharedSink, Trace};
use ldc_ssd::{MemStorage, SsdConfig, SsdDevice, StorageBackend};

use crate::policy::{LdcConfig, LdcPolicy};

/// Which compaction mechanism a store runs.
#[derive(Debug, Clone, PartialEq)]
pub enum CompactionMode {
    /// Lower-level driven compaction (the paper's contribution).
    Ldc(LdcConfig),
    /// Traditional upper-level driven compaction (the LevelDB baseline).
    Udc,
    /// Size-tiered compaction (the lazy baseline, paper §V): better write
    /// amplification than UDC, far worse tail latency.
    SizeTiered,
}

/// Configures and opens an [`LdcDb`].
pub struct LdcDbBuilder {
    options: Options,
    ssd: SsdConfig,
    mode: CompactionMode,
    storage: Option<Arc<dyn StorageBackend>>,
    sink: Option<SharedSink>,
    trace_worst_k: Option<usize>,
}

impl LdcDbBuilder {
    fn new() -> Self {
        Self {
            options: Options::default(),
            ssd: SsdConfig::default(),
            mode: CompactionMode::Ldc(LdcConfig::default()),
            storage: None,
            sink: None,
            trace_worst_k: None,
        }
    }

    /// Replaces the engine options wholesale.
    pub fn options(mut self, options: Options) -> Self {
        self.options = options;
        self
    }

    /// The options the store will open with (read-only; e.g. a follower
    /// bootstrap needs `max_levels` before the store exists).
    pub fn options_ref(&self) -> &Options {
        &self.options
    }

    /// Replaces the simulated-SSD profile.
    pub fn ssd_config(mut self, ssd: SsdConfig) -> Self {
        self.ssd = ssd;
        self
    }

    /// Whether each commit fsyncs the WAL (off by default, like LevelDB).
    /// Crash harnesses turn this on so every acknowledged write is durable.
    pub fn wal_sync(mut self, on: bool) -> Self {
        self.options.wal_sync = on;
        self
    }

    /// Background worker threads for flush/compaction. `0` (the default)
    /// keeps the deterministic inline path; `>= 1` moves background work
    /// onto a dedicated scheduler pool (linearizable, not
    /// timing-reproducible).
    pub fn background_workers(mut self, workers: usize) -> Self {
        self.options.background_workers = workers;
        self
    }

    /// Upper bound on range-partitioned subcompactions per picked merge
    /// when running on the worker pool (`1` disables splitting).
    pub fn max_subcompactions(mut self, n: usize) -> Self {
        self.options.max_subcompactions = n;
        self
    }

    /// Selects the compaction mechanism.
    pub fn mode(mut self, mode: CompactionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Runs the UDC baseline instead of LDC.
    pub fn udc_baseline(mut self) -> Self {
        self.mode = CompactionMode::Udc;
        self
    }

    /// Runs the lazy size-tiered baseline instead of LDC. Raises the
    /// engine's Level-0 gates (tiered stores keep many L0 runs by design).
    pub fn size_tiered(mut self) -> Self {
        self.mode = CompactionMode::SizeTiered;
        self.options.l0_compaction_trigger = 4;
        self.options.l0_slowdown_threshold = 60;
        self.options.l0_stop_threshold = 100;
        self
    }

    /// Fixes the SliceLink threshold (implies LDC mode).
    pub fn slice_link_threshold(mut self, threshold: usize) -> Self {
        self.mode = CompactionMode::Ldc(LdcConfig {
            slice_link_threshold: Some(threshold),
            ..LdcConfig::default()
        });
        self
    }

    /// Enables the self-adaptive threshold controller (implies LDC mode).
    pub fn adaptive_threshold(mut self) -> Self {
        self.mode = CompactionMode::Ldc(LdcConfig {
            adaptive: true,
            ..LdcConfig::default()
        });
        self
    }

    /// Uses an existing storage backend (e.g. to reopen a store, or to share
    /// a device between experiments).
    pub fn storage(mut self, storage: Arc<dyn StorageBackend>) -> Self {
        self.storage = Some(storage);
        self
    }

    /// Routes structured events (flush, merge, link, stall, SSD GC,
    /// threshold adaptation, ...) from every layer to `sink`. Without
    /// this, tracing is off and no event is ever constructed.
    pub fn event_sink(mut self, sink: SharedSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Enables per-operation request tracing with a deterministic
    /// worst-`k` trace reservoir per op type (tie-broken from the engine
    /// seed). Off by default; when off, no trace context is ever built,
    /// and even when on the tracer only reads the virtual clock, so
    /// traced and untraced runs are time-identical.
    pub fn trace_worst_k(mut self, k: usize) -> Self {
        self.trace_worst_k = Some(k);
        self
    }

    /// Opens `shards` independent stores with identical configuration —
    /// the construction path for a hash-range-sharded service (each shard
    /// owns its own simulated device, WAL, and compaction state). A
    /// caller-supplied storage backend cannot be split between shards, so
    /// it is rejected; the shared event sink, if any, receives events from
    /// every shard.
    pub fn build_shards(self, shards: usize) -> Result<Vec<LdcDb>> {
        if shards == 0 {
            return Err(ldc_lsm::Error::InvalidArgument(
                "build_shards: shard count must be >= 1".to_string(),
            ));
        }
        if self.storage.is_some() {
            return Err(ldc_lsm::Error::InvalidArgument(
                "build_shards: a single storage backend cannot back multiple shards".to_string(),
            ));
        }
        let mut out = Vec::with_capacity(shards);
        for _ in 0..shards {
            let builder = LdcDbBuilder {
                options: self.options.clone(),
                ssd: self.ssd.clone(),
                mode: self.mode.clone(),
                storage: None,
                sink: self.sink.clone(),
                trace_worst_k: self.trace_worst_k,
            };
            out.push(builder.build()?);
        }
        Ok(out)
    }

    /// Opens the store.
    pub fn build(self) -> Result<LdcDb> {
        let storage = match self.storage {
            Some(s) => s,
            None => {
                let device = SsdDevice::new(self.ssd.clone());
                MemStorage::new(device) as Arc<dyn StorageBackend>
            }
        };
        let policy: Box<dyn CompactionPolicy> = match &self.mode {
            CompactionMode::Ldc(config) => {
                let mut policy = LdcPolicy::with_config(config.clone());
                if let Some(sink) = &self.sink {
                    policy.set_event_trace(Arc::clone(sink), storage.device().clock().clone());
                }
                Box::new(policy)
            }
            CompactionMode::Udc => Box::new(UdcPolicy::new()),
            CompactionMode::SizeTiered => Box::new(ldc_lsm::compaction::SizeTieredPolicy::new()),
        };
        // Open with the sink already attached so the recovery event emitted
        // during WAL replay / manifest recovery is captured too.
        let sink = self.sink.unwrap_or_else(|| Arc::new(NoopSink));
        let mut inner = Db::open_with_sink(Arc::clone(&storage), self.options, policy, sink)?;
        if let Some(k) = self.trace_worst_k {
            inner.enable_tracing(k);
        }
        let inner = Arc::new(inner);
        // No-op unless `background_workers >= 1`; with workers the engine
        // runs flushes/compactions on its own threads (linearizable, but
        // not timing-reproducible — see Options::background_workers).
        inner.start_workers();
        Ok(LdcDb { inner, storage })
    }
}

/// An SSD-oriented key-value store running lower-level driven compaction
/// (or, for comparison, the UDC baseline).
///
/// The engine lives behind an `Arc` so the background worker pool (when
/// `background_workers >= 1`) can share it; dropping the facade stops and
/// joins the pool.
pub struct LdcDb {
    inner: Arc<Db>,
    storage: Arc<dyn StorageBackend>,
}

impl Drop for LdcDb {
    fn drop(&mut self) {
        // Idempotent; joins the background workers so they release their
        // engine handles (pending work is covered by the WAL / repair).
        self.inner.shutdown_workers();
    }
}

impl LdcDb {
    /// Starts configuring a store.
    pub fn builder() -> LdcDbBuilder {
        LdcDbBuilder::new()
    }

    /// Inserts or overwrites a key.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.inner.put(key, value)
    }

    /// Point lookup. The value is copied out of the engine at this
    /// boundary; use [`LdcDb::get_pinned`] to borrow it zero-copy instead.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.inner.get(key)
    }

    /// Zero-copy point lookup: the returned handle borrows the cached
    /// block (or the inline memtable entry) without copying the value.
    pub fn get_pinned(&self, key: &[u8]) -> Result<Option<PinnedValue>> {
        self.inner.get_pinned(key)
    }

    /// Deletes a key.
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        self.inner.delete(key)
    }

    /// Batched point lookups against **one** pinned snapshot: every key is
    /// resolved at the same sequence number, so the results are mutually
    /// consistent even while concurrent writers advance the store (an
    /// atomically written batch is observed either entirely or not at
    /// all). Returns one entry per input key, in order.
    pub fn multi_get(&self, keys: &[&[u8]]) -> Result<Vec<Option<Vec<u8>>>> {
        let snapshot = self.inner.snapshot();
        let mut out = Vec::with_capacity(keys.len());
        let mut failed = None;
        for key in keys {
            match self.inner.get_at(key, &snapshot) {
                Ok(value) => out.push(value),
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        // Always unpin, error or not — a leaked snapshot pins files forever.
        self.inner.release_snapshot(snapshot);
        match failed {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Range scan: up to `limit` live entries with key >= `start`.
    pub fn scan(&self, start: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.inner.scan(start, limit)
    }

    /// Applies a write batch atomically. Concurrent callers are group
    /// committed: one leader folds every queued batch into a single WAL
    /// append and sync.
    pub fn write(&self, batch: ldc_lsm::WriteBatch) -> Result<()> {
        self.inner.write(batch)
    }

    /// Pins the current state for repeatable reads (release with
    /// [`LdcDb::release_snapshot`]).
    pub fn snapshot(&self) -> ldc_lsm::db::Snapshot {
        self.inner.snapshot()
    }

    /// Releases a pinned snapshot.
    pub fn release_snapshot(&self, snapshot: ldc_lsm::db::Snapshot) {
        self.inner.release_snapshot(snapshot)
    }

    /// Point lookup as of a pinned snapshot.
    pub fn get_at(&self, key: &[u8], snapshot: &ldc_lsm::db::Snapshot) -> Result<Option<Vec<u8>>> {
        self.inner.get_at(key, snapshot)
    }

    /// Range scan as of a pinned snapshot.
    pub fn scan_at(
        &self,
        start: &[u8],
        limit: usize,
        snapshot: &ldc_lsm::db::Snapshot,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.inner.scan_at(start, limit, snapshot)
    }

    /// Engine counters.
    pub fn stats(&self) -> DbStats {
        self.inner.stats()
    }

    /// What the opening recovery replayed, truncated, and quarantined.
    pub fn recovery_summary(&self) -> RecoverySummary {
        self.inner.recovery_summary()
    }

    /// The simulated device (clock, I/O stats, wear).
    pub fn device(&self) -> &Arc<SsdDevice> {
        self.inner.device()
    }

    /// The storage backend (space accounting, file listing).
    pub fn storage(&self) -> &Arc<dyn StorageBackend> {
        &self.storage
    }

    /// Name of the active compaction policy ("ldc" or "udc").
    pub fn policy_name(&self) -> String {
        self.inner.policy_name()
    }

    /// Live on-device bytes (Fig 15's space metric).
    pub fn space_bytes(&self) -> u64 {
        self.inner.space_bytes()
    }

    /// Block-cache counters (hits, misses, evictions).
    pub fn block_cache_counters(&self) -> CacheCounters {
        self.inner.block_cache_counters()
    }

    /// Routes structured events to `sink` from now on (equivalent to the
    /// builder's [`LdcDbBuilder::event_sink`], minus policy adaptation
    /// events, which need the sink at build time).
    pub fn set_event_sink(&mut self, sink: SharedSink) {
        // The workers each hold an engine handle; park them so the `Arc`
        // is briefly unique, swap the sink, then restart the pool.
        let restart = self.inner.workers_active();
        if restart {
            self.inner.shutdown_workers();
        }
        Arc::get_mut(&mut self.inner)
            .expect("no outstanding engine handles after worker shutdown")
            .set_event_sink(sink);
        if restart {
            self.inner.start_workers();
        }
    }

    /// The engine's metrics registry (per-level gauges, per-op latency
    /// histograms).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        self.inner.metrics()
    }

    /// Human-readable engine report (LevelDB `leveldb.stats` style).
    pub fn stats_report(&self) -> String {
        self.inner.stats_report()
    }

    /// The worst-latency traces captured by the reservoir, grouped by op
    /// type, worst first. Empty unless the store was built with
    /// [`LdcDbBuilder::trace_worst_k`].
    pub fn worst_traces(&self) -> Vec<Trace> {
        self.inner.worst_traces()
    }

    /// Tail-latency report: per-op percentiles through P99.99, the blame
    /// breakdown, and the worst captured traces.
    pub fn tail_report(&self) -> String {
        self.inner.tail_report()
    }

    /// The worst-K trace reservoir rendered as folded stacks (flamegraph
    /// collapse format). Empty unless tracing was enabled.
    pub fn trace_folded_report(&self) -> String {
        self.inner.trace_folded_report()
    }

    /// Clears the worst-K reservoir and its arrival counters (e.g. after
    /// a preload phase). No-op when tracing is off.
    pub fn reset_traces(&self) {
        self.inner.reset_traces()
    }

    /// Verifies every SSTable's checksums and ordering; returns entries
    /// scanned.
    pub fn verify_integrity(&self) -> Result<u64> {
        self.inner.verify_integrity()
    }

    /// Online scrub: re-reads every reachable SSTable and re-verifies
    /// block CRCs, key order, index/footer consistency, and filter
    /// membership. Under [`ldc_lsm::CorruptionPolicy::Quarantine`] corrupt
    /// live tables are quarantined on the spot.
    pub fn scrub(&self) -> Result<ldc_lsm::ScrubReport> {
        self.inner.scrub()
    }

    /// Files quarantined since open (corrupt tables set aside as
    /// `<name>.quarantined` and dropped from the version).
    pub fn quarantined(&self) -> Vec<ldc_lsm::QuarantinedFile> {
        self.inner.quarantined()
    }

    /// Waits out any pending background flush/compaction debt, returning
    /// the virtual nanoseconds waited. Call at measurement boundaries.
    pub fn drain_background(&self) -> u64 {
        self.inner.drain_background()
    }

    /// Flushes both memtables and rotates the WAL, so the version alone
    /// captures every acknowledged write.
    pub fn flush(&self) -> Result<()> {
        self.inner.flush()
    }

    /// Creates an online, crash-consistent checkpoint named `name` under
    /// the `ckpt-<name>@` prefix on this store's storage. Restore it with
    /// [`ldc_lsm::restore_checkpoint`].
    pub fn checkpoint(&self, name: &str) -> Result<ldc_lsm::CheckpointReport> {
        self.inner.checkpoint(name)
    }

    /// Starts incremental backup `name`: a base checkpoint under
    /// `backup-<name>@` plus an armed edit-stream shipper that appends
    /// every subsequent version change (and links its new SSTables) until
    /// [`LdcDb::backup_end`]. Restore with [`ldc_lsm::restore_backup`].
    pub fn backup_begin(&self, name: &str) -> Result<ldc_lsm::CheckpointReport> {
        self.inner.backup_begin(name)
    }

    /// Stops the active backup stream, returning `(edits, files, bytes)`
    /// shipped, or `None` when no stream was armed.
    pub fn backup_end(&self) -> Option<(u64, u64, u64)> {
        self.inner.backup_end()
    }

    /// Whether an incremental backup stream is currently armed.
    pub fn shipping(&self) -> bool {
        self.inner.shipping()
    }

    /// Progress of the armed backup stream as `(edits, files, bytes)`.
    pub fn shipper_progress(&self) -> Option<(u64, u64, u64)> {
        self.inner.shipper_progress()
    }

    /// How many backup-stream records this store has applied (nonzero
    /// only on followers / restored backups).
    pub fn replication_cursor(&self) -> u64 {
        self.inner.replication_cursor()
    }

    /// Applies one replicated version edit (the read-only follower's
    /// write path; see `ldc-sync`).
    pub fn apply_remote_edit(&self, edit: &ldc_lsm::version::VersionEdit) -> Result<()> {
        self.inner.apply_remote_edit(edit)
    }

    /// Access to the underlying engine (experiments, tests). The engine
    /// API is `&self` throughout, so shared access suffices.
    pub fn engine(&self) -> &Db {
        &self.inner
    }

    /// Read-only access to the underlying engine.
    pub fn engine_ref(&self) -> &Db {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_selects_policy() {
        let ldc = LdcDb::builder().build().unwrap();
        assert_eq!(ldc.policy_name(), "ldc");
        let udc = LdcDb::builder().udc_baseline().build().unwrap();
        assert_eq!(udc.policy_name(), "udc");
    }

    #[test]
    fn basic_crud() {
        let db = LdcDb::builder()
            .options(Options::small_for_tests())
            .build()
            .unwrap();
        db.put(b"a", b"1").unwrap();
        db.put(b"b", b"2").unwrap();
        db.delete(b"a").unwrap();
        assert_eq!(db.get(b"a").unwrap(), None);
        assert_eq!(db.get(b"b").unwrap(), Some(b"2".to_vec()));
        let scan = db.scan(b"", 10).unwrap();
        assert_eq!(scan, vec![(b"b".to_vec(), b"2".to_vec())]);
    }

    #[test]
    fn reopen_via_shared_storage() {
        let storage: Arc<dyn StorageBackend> = MemStorage::new(SsdDevice::with_defaults());
        {
            let db = LdcDb::builder()
                .options(Options::small_for_tests())
                .storage(Arc::clone(&storage))
                .build()
                .unwrap();
            db.put(b"persisted", b"yes").unwrap();
        }
        let db = LdcDb::builder()
            .options(Options::small_for_tests())
            .storage(storage)
            .build()
            .unwrap();
        assert_eq!(db.get(b"persisted").unwrap(), Some(b"yes".to_vec()));
    }
}
