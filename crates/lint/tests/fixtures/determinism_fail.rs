// Fixture: every construct here must be flagged by the determinism rule
// when placed in a scoped crate (ssd/lsm/core/chaos/workload non-test code).
use std::collections::HashMap;
use std::time::Instant;

struct Stats {
    per_level: HashMap<u32, u64>,
}

fn measure() -> u64 {
    let start = Instant::now(); // flagged: wall clock
    let _jitter: u64 = rand::random(); // flagged: unseeded entropy
    start.elapsed().as_nanos() as u64
}

fn dump(stats: &Stats) {
    // flagged: HashMap iteration feeding an order-sensitive path (output).
    for (level, bytes) in stats.per_level.iter() {
        println!("L{level}: {bytes}");
    }
}
