//! `ldc-bench` — multi-tool entry point.
//!
//! The figure/table reproductions live in `src/bin/` (one binary each;
//! `cargo run -p ldc-bench --bin fig08_tail_latency`). This default binary
//! hosts operational subcommands that exercise the engine end to end:
//!
//! ```text
//! cargo run -p ldc-bench -- repair --seed 7
//! cargo run -p ldc-bench -- readwhilewriting --quick
//! ```
//!
//! `repair` drives the full degraded-mode pipeline on a fresh simulated
//! store: run a workload, flip one bit in the largest SSTable, scrub
//! (detect), quarantine (keep serving), `repair_db` (rebuild the manifest,
//! salvage WAL remnants), reopen, and verify every served value against
//! the model. It also proves the transient-read retry budget masks
//! heal-after-N read failures. Exits non-zero on any verification failure,
//! printing the `(seed, plan)` replay recipe.
//!
//! `readwhilewriting` is the db_bench-style mixed workload: one writer
//! overwrites a preloaded keyspace (forcing flushes and compactions) while
//! N reader threads hammer point lookups through the shared handle,
//! measuring host-time read latency. It runs both compaction modes and
//! writes a machine-readable `BENCH_readwhilewriting.json` for CI trend
//! tracking. Latencies here are *host* wall-clock (thread scheduling and
//! all), unlike the figure binaries' virtual-clock numbers — the point is
//! exercising the concurrent read path, not reproducing a paper figure.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use ldc_bench::cli::{print_table, CommonArgs};
use ldc_bench::prelude::*;
use ldc_chaos::{ChaosConfig, ChaosHarness};
use ldc_core::CompactionMode;
use ldc_core::LdcConfig;
use ldc_workload::Histogram;

fn usage() -> ! {
    eprintln!("usage: ldc-bench <subcommand> [flags]");
    eprintln!();
    eprintln!("subcommands:");
    eprintln!(
        "  repair            degraded-mode pipeline: scrub -> quarantine -> repair -> verify"
    );
    eprintln!("  backup            checkpoint -> incremental stream -> crash -> restore ->");
    eprintln!("                    verify, plus follower apply-crash recovery, UDC and LDC");
    eprintln!("  readwhilewriting  1 writer + N readers on a shared handle, UDC vs LDC");
    eprintln!("                    [--readers N] [--workers N] [--quick] [--out PATH]");
    eprintln!("                    + common flags; --workers N also runs both modes with");
    eprintln!("                    N background workers next to the inline baseline");
    eprintln!("  compaction-backlog  burst-load a flush/compaction backlog, then measure");
    eprintln!("                    drain time + foreground read p50/p99/p999 during the");
    eprintln!("                    drain, UDC vs LDC -> BENCH_backlog.json");
    eprintln!("                    [--readers N] [--workers N] [--quick] [--out PATH]");
    eprintln!("                    [--det-out PATH  deterministic single-threaded replay]");
    eprintln!("  tail              deterministic mixed load, UDC vs LDC: P50..P99.99 +");
    eprintln!("                    per-blame breakdown -> BENCH_tail.json");
    eprintln!("                    [--k N] [--quick] [--out PATH] + common flags");
    eprintln!("  trace-report      same load; renders the worst-K trace reservoir as");
    eprintln!("                    folded stacks [--k N] [--quick] + common flags");
    eprintln!("  ycsb-net          YCSB A-F over loopback TCP against ldc-server, UDC vs");
    eprintln!("                    LDC, closed + open loop -> BENCH_net.json");
    eprintln!("                    [--shards N] [--queue-capacity N] [--rate R]");
    eprintln!("                    [--closed-only] [--quick] [--out PATH] + common flags");
    eprintln!();
    eprintln!("figure binaries live under --bin (e.g. --bin fig08_tail_latency)");
    std::process::exit(2);
}

fn run_repair(args: CommonArgs) -> Result<(), String> {
    let config = ChaosConfig {
        ops: args.ops,
        ..ChaosConfig::quick(args.seed, CompactionMode::Ldc(LdcConfig::default()))
    };
    let harness = ChaosHarness::new(config);

    println!("# degraded-mode pipeline (seed {})", args.seed);

    let transient = harness.run_transient_reads(2).map_err(|f| f.to_string())?;
    println!(
        "transient reads: {} injected failures masked by {} retries",
        transient.injected_failures, transient.retries_recorded
    );
    if transient.injected_failures > 0 && transient.retries_recorded == 0 {
        return Err("transient failures were injected but never retried".to_string());
    }

    let report = harness
        .run_scrub_quarantine_repair()
        .map_err(|f| f.to_string())?;
    println!(
        "bit flip: {} byte {} bit {}",
        report.file, report.offset, report.bit
    );
    if report.detected_at_open {
        println!("detection: reopen refused the corrupt store");
    } else {
        println!(
            "detection: scrub reported {} corruption(s), quarantined {} file(s)",
            report.scrub_corruptions, report.files_quarantined
        );
    }
    println!(
        "repair: kept {} table(s), salvaged {}, quarantined {}, thawed {} frozen, {} WAL record(s)",
        report.repair.tables_kept,
        report.repair.tables_salvaged,
        report.repair.tables_quarantined,
        report.repair.frozen_thawed,
        report.repair.wal_records_salvaged
    );
    println!(
        "verify: {} key(s) surviving, {} lost with the quarantined table",
        report.surviving_keys, report.lost_keys
    );
    if report.surviving_keys == 0 {
        return Err("repair lost every key".to_string());
    }
    println!("OK");
    Ok(())
}

/// The crash-mid-backup pipeline from EXPERIMENTS.md, end to end: profile
/// the backup's op timeline, kill the power inside checkpoint creation and
/// mid-ship, restore (or prove the torn checkpoint is refused), bootstrap
/// a follower from the surviving stream, then crash the follower itself
/// mid-apply and recover it via the documented recipe. Every line prints
/// the `(seed, crash op)` pair that replays it.
fn run_backup(args: CommonArgs) -> Result<(), String> {
    println!("# backup pipeline (seed {})", args.seed);
    for (label, mode) in [
        ("UDC", CompactionMode::Udc),
        ("LDC", CompactionMode::Ldc(LdcConfig::default())),
    ] {
        let config = ChaosConfig {
            ops: args.ops,
            ..ChaosConfig::quick(args.seed, mode)
        };
        let harness = ChaosHarness::new(config);
        let profile = harness.measure_backup_ops().map_err(|f| f.to_string())?;
        println!(
            "## {label}: checkpoint spans storage ops {}..={}, pipeline total {}",
            profile.before_checkpoint + 1,
            profile.checkpoint_done,
            profile.total
        );

        // One point inside checkpoint creation, one just before its
        // completeness marker, one in the shipping workload after it.
        let points = [
            profile.before_checkpoint + 1,
            profile.checkpoint_done.saturating_sub(1),
            (profile.checkpoint_done + profile.total) / 2,
        ];
        let reports = harness
            .backup_crash_sweep(points)
            .map_err(|f| f.to_string())?;
        for r in &reports {
            let opt = |v: Option<u64>| v.map_or_else(|| "-".to_string(), |v| v.to_string());
            println!(
                "crash @{}: {} acked writes, backup {}, restored prefix {}, follower cursor {}",
                r.crash_op,
                r.acked_writes,
                if r.backup_complete {
                    "complete"
                } else {
                    "incomplete (restore refused)"
                },
                opt(r.restored_prefix),
                opt(r.follower_cursor),
            );
            if !r.crashed {
                return Err(format!("{label}: crash point {} never fired", r.crash_op));
            }
        }
        let last = reports.last().expect("sweep over three points");
        if !last.backup_complete || last.restored_prefix.is_none() {
            return Err(format!(
                "{label}: a mid-ship crash must leave a restorable backup"
            ));
        }

        // Follower side: crash the apply path, recover per the recipe
        // (reopen from the durable cursor, or wipe and re-bootstrap), and
        // require catch-up to the full stream a clean run reaches.
        let clean = harness.run_apply_crash(0).map_err(|f| f.to_string())?;
        let applies = harness
            .apply_crash_sweep([3, clean.follower_ops.saturating_sub(5)])
            .map_err(|f| f.to_string())?;
        for r in &applies {
            println!(
                "apply crash @{}: durable cursor {} at crash, {} after recovery (stream {})",
                r.crash_op, r.applied_before_crash, r.final_cursor, clean.final_cursor
            );
            if !r.crashed {
                return Err(format!(
                    "{label}: apply crash point {} never fired",
                    r.crash_op
                ));
            }
            if r.final_cursor != clean.final_cursor {
                return Err(format!(
                    "{label}: follower recovered to cursor {}, clean run reaches {}",
                    r.final_cursor, clean.final_cursor
                ));
            }
        }
    }
    println!(
        "replay: ldc-bench backup --seed {} --ops {} reproduces every line",
        args.seed, args.ops
    );
    println!("OK");
    Ok(())
}

/// One mode's results from the read-while-writing race.
struct RwwResult {
    mode: &'static str,
    background_workers: usize,
    wall_secs: f64,
    writes: u64,
    reads: u64,
    read_latency_ns: Histogram,
    write_latency_ns: Histogram,
    flushes: u64,
    compactions: u64,
}

impl RwwResult {
    fn p_us(&self, p: f64) -> f64 {
        self.read_latency_ns.percentile(p) as f64 / 1e3
    }

    fn wp_us(&self, p: f64) -> f64 {
        self.write_latency_ns.percentile(p) as f64 / 1e3
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"mode\":\"{}\",\"background_workers\":{},",
                "\"wall_secs\":{:.3},\"writes\":{},",
                "\"writes_per_sec\":{:.0},\"reads\":{},\"reads_per_sec\":{:.0},",
                "\"read_p50_us\":{:.1},\"read_p99_us\":{:.1},\"read_p999_us\":{:.1},",
                "\"read_mean_us\":{:.1},\"read_max_us\":{:.1},",
                "\"write_p50_us\":{:.1},\"write_p99_us\":{:.1},\"write_p999_us\":{:.1},",
                "\"write_mean_us\":{:.1},\"write_max_us\":{:.1},",
                "\"flushes\":{},\"compactions\":{}}}"
            ),
            self.mode,
            self.background_workers,
            self.wall_secs,
            self.writes,
            self.writes as f64 / self.wall_secs,
            self.reads,
            self.reads as f64 / self.wall_secs,
            self.p_us(50.0),
            self.p_us(99.0),
            self.p_us(99.9),
            self.read_latency_ns.mean() / 1e3,
            self.read_latency_ns.max() as f64 / 1e3,
            self.wp_us(50.0),
            self.wp_us(99.0),
            self.wp_us(99.9),
            self.write_latency_ns.mean() / 1e3,
            self.write_latency_ns.max() as f64 / 1e3,
            self.flushes,
            self.compactions
        )
    }
}

/// Tiny xorshift so reader key choice is seedable without pulling the
/// workload sampler (whose state isn't `Send`-shareable across threads).
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// One writer overwriting `args.ops` keys over a preloaded keyspace while
/// `readers` threads do point gets through the same shared handle.
// Host wall-clock is the measurement here, not a determinism leak: threads
// race for real, so virtual time cannot describe what readers experience.
#[allow(clippy::disallowed_methods)]
fn run_rww_mode(
    mode: &'static str,
    background_workers: usize,
    db: LdcDb,
    args: &CommonArgs,
    readers: u64,
) -> Result<RwwResult, String> {
    let codec = args.codec();
    let preload = args.ops.max(1);
    for i in 0..preload {
        db.put(&codec.key(i), &codec.value(i, 0))
            .map_err(|e| format!("{mode} preload: {e}"))?;
    }
    db.drain_background();

    let stop = AtomicBool::new(false);
    let failed = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    let start = Instant::now();
    let mut merged = Histogram::new();
    let mut write_hist = Histogram::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for r in 0..readers {
            let db = &db;
            let codec = &codec;
            let (stop, failed, reads) = (&stop, &failed, &reads);
            let seed = args.seed;
            handles.push(s.spawn(move || {
                let mut hist = Histogram::new();
                let mut rng = seed ^ (r + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                while !stop.load(Ordering::Relaxed) {
                    let key = codec.key(xorshift(&mut rng) % preload);
                    let t0 = Instant::now();
                    let got = db.get_pinned(&key);
                    hist.record(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                    match got {
                        Ok(Some(_)) => {}
                        Ok(None) => {
                            eprintln!("{mode}: reader {r} lost a preloaded key");
                            failed.store(true, Ordering::Relaxed);
                            return hist;
                        }
                        Err(e) => {
                            eprintln!("{mode}: reader {r} error: {e}");
                            failed.store(true, Ordering::Relaxed);
                            return hist;
                        }
                    }
                    reads.fetch_add(1, Ordering::Relaxed);
                }
                hist
            }));
        }
        // This thread is the writer: overwrite the preloaded keyspace so
        // flushes and compactions churn the files readers are pinned to.
        // Write latency is measured the same way the readers measure
        // theirs — host time around each call — so stalls and group-commit
        // waits land in the write tail.
        for i in 0..args.ops {
            let idx = i % preload;
            let t0 = Instant::now();
            let put = db.put(&codec.key(idx), &codec.value(idx, 1 + i / preload));
            write_hist.record(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
            if let Err(e) = put {
                eprintln!("{mode}: writer error: {e}");
                failed.store(true, Ordering::Relaxed);
                break;
            }
            if failed.load(Ordering::Relaxed) {
                break;
            }
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            merged.merge(&h.join().expect("reader thread panicked"));
        }
    });
    let wall_secs = start.elapsed().as_secs_f64().max(1e-9);
    db.drain_background();
    if failed.load(Ordering::Relaxed) {
        return Err(format!("{mode}: read-while-writing race failed"));
    }
    let stats = db.stats();
    Ok(RwwResult {
        mode,
        background_workers,
        wall_secs,
        writes: args.ops,
        reads: reads.load(Ordering::Relaxed),
        read_latency_ns: merged,
        write_latency_ns: write_hist,
        flushes: stats.flushes,
        compactions: stats.merges + stats.trivial_moves + stats.links + stats.ldc_merges,
    })
}

/// Deterministic readwhilewriting-style mixed load for tail attribution:
/// single-threaded (so the virtual clock is exactly reproducible), one
/// write every fourth op over a preloaded keyspace, uniform point gets in
/// between. Returns the store with tracing still enabled so callers can
/// render reports from its reservoir.
fn run_tail_load(udc: bool, args: &CommonArgs, worst_k: usize) -> Result<LdcDb, String> {
    let mut b = LdcDb::builder()
        .options(paper_scaled_options())
        .trace_worst_k(worst_k);
    if udc {
        b = b.udc_baseline();
    }
    let db = b.build().map_err(|e| e.to_string())?;
    let codec = args.codec();
    let preload = (args.ops / 2).max(1);
    for i in 0..preload {
        db.put(&codec.key(i), &codec.value(i, 0))
            .map_err(|e| format!("preload: {e}"))?;
    }
    db.drain_background();
    // Measure only the mixed phase: preload latencies, blame, and traces
    // are cleared so both modes start from identical accounting.
    db.metrics().reset();
    db.reset_traces();

    let mut rng = args.seed | 1;
    for i in 0..args.ops {
        if i % 4 == 0 {
            let idx = i % preload;
            db.put(&codec.key(idx), &codec.value(idx, 1 + i / preload))
                .map_err(|e| format!("write op {i}: {e}"))?;
        } else {
            let idx = xorshift(&mut rng) % preload;
            db.get_pinned(&codec.key(idx))
                .map_err(|e| format!("read op {i}: {e}"))?;
        }
    }
    Ok(db)
}

/// Emits one mode's JSON object for `BENCH_tail.json`: virtual-clock
/// percentiles through P99.99 plus the per-blame nanosecond breakdown for
/// each op type that ran.
fn tail_mode_json(mode: &str, db: &LdcDb) -> Result<String, String> {
    use ldc_obs::{Blame, OpType};
    // Acceptance invariant: every captured trace's blame buckets must sum
    // to its total latency exactly — attribution may never lose or invent
    // a nanosecond.
    for trace in db.worst_traces() {
        let sum: u64 = trace.blame_breakdown().iter().sum();
        if sum != trace.total {
            return Err(format!(
                "{mode}: trace {} #{} blame sum {} != total {}",
                trace.op.label(),
                trace.op_index,
                sum,
                trace.total
            ));
        }
    }
    let metrics = db.metrics();
    let mut ops = Vec::new();
    for op in OpType::ALL {
        let h = metrics.latency(op);
        if h.count() == 0 {
            continue;
        }
        let blame = metrics.blame_totals(op);
        let blame_fields: Vec<String> = Blame::ALL
            .iter()
            .zip(blame.iter())
            .map(|(b, ns)| format!("\"{}\":{}", b.label(), ns))
            .collect();
        ops.push(format!(
            concat!(
                "\"{}\":{{\"count\":{},\"p50_us\":{:.1},\"p99_us\":{:.1},",
                "\"p999_us\":{:.1},\"p9999_us\":{:.1},\"max_us\":{:.1},",
                "\"blame_ns\":{{{}}}}}"
            ),
            op.label(),
            h.count(),
            h.percentile(50.0) as f64 / 1e3,
            h.percentile(99.0) as f64 / 1e3,
            h.percentile(99.9) as f64 / 1e3,
            h.percentile(99.99) as f64 / 1e3,
            h.max() as f64 / 1e3,
            blame_fields.join(",")
        ));
    }
    Ok(format!("{{\"mode\":\"{}\",{}}}", mode, ops.join(",")))
}

fn run_tail(args: CommonArgs, worst_k: usize, out: &str) -> Result<(), String> {
    let udc = run_tail_load(true, &args, worst_k)?;
    let ldc = run_tail_load(false, &args, worst_k)?;

    for (mode, db) in [("UDC", &udc), ("LDC", &ldc)] {
        println!("## {mode}");
        print!("{}", db.tail_report());
        println!();
    }

    let json = format!(
        concat!(
            "{{\"bench\":\"tail\",\"ops\":{},\"value_bytes\":{},\"seed\":{},",
            "\"worst_k\":{},\"modes\":[{},{}]}}\n"
        ),
        args.ops,
        args.value_bytes,
        args.seed,
        worst_k,
        tail_mode_json("UDC", &udc)?,
        tail_mode_json("LDC", &ldc)?
    );
    std::fs::write(out, &json).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

fn run_trace_report(args: CommonArgs, worst_k: usize) -> Result<(), String> {
    for udc in [true, false] {
        let db = run_tail_load(udc, &args, worst_k)?;
        let mode = if udc { "UDC" } else { "LDC" };
        println!("## {mode} worst-{worst_k} traces (folded stacks, virtual ns)");
        print!("{}", db.trace_folded_report());
        println!();
    }
    Ok(())
}

fn run_read_while_writing(
    args: CommonArgs,
    readers: u64,
    workers: usize,
    out: &str,
) -> Result<(), String> {
    let open = |udc: bool, bg: usize| -> Result<LdcDb, String> {
        let mut b = LdcDb::builder()
            .options(paper_scaled_options())
            .background_workers(bg)
            .max_subcompactions(4);
        if udc {
            b = b.udc_baseline();
        }
        b.build().map_err(|e| e.to_string())
    };
    // With `--workers N` the inline runs stay in as the baseline, so one
    // JSON records the threaded-vs-inline read-tail difference directly.
    let mut results = vec![
        run_rww_mode("UDC", 0, open(true, 0)?, &args, readers)?,
        run_rww_mode("LDC", 0, open(false, 0)?, &args, readers)?,
    ];
    if workers > 0 {
        results.push(run_rww_mode(
            "UDC",
            workers,
            open(true, workers)?,
            &args,
            readers,
        )?);
        results.push(run_rww_mode(
            "LDC",
            workers,
            open(false, workers)?,
            &args,
            readers,
        )?);
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                format!("{}", r.background_workers),
                format!("{:.0}", r.writes as f64 / r.wall_secs),
                format!("{:.0}", r.reads as f64 / r.wall_secs),
                format!("{:.1}", r.p_us(50.0)),
                format!("{:.1}", r.p_us(99.0)),
                format!("{:.1}", r.p_us(99.9)),
                format!("{:.1}", r.wp_us(50.0)),
                format!("{:.1}", r.wp_us(99.0)),
                format!("{:.1}", r.wp_us(99.9)),
                format!("{}", r.flushes),
                format!("{}", r.compactions),
            ]
        })
        .collect();
    print_table(
        args.csv,
        &format!(
            "readwhilewriting: {} writes vs {} readers ({}-byte values, host time)",
            args.ops, readers, args.value_bytes
        ),
        &[
            "system",
            "bg workers",
            "writes/s",
            "reads/s",
            "read p50 (us)",
            "read p99 (us)",
            "read p99.9 (us)",
            "write p50 (us)",
            "write p99 (us)",
            "write p99.9 (us)",
            "flushes",
            "compactions",
        ],
        &rows,
    );

    let modes_json: Vec<String> = results.iter().map(|r| r.json()).collect();
    let json = format!(
        concat!(
            "{{\"bench\":\"readwhilewriting\",\"ops\":{},\"readers\":{},",
            "\"value_bytes\":{},\"seed\":{},\"background_workers\":{},",
            "\"modes\":[{}]}}\n"
        ),
        args.ops,
        readers,
        args.value_bytes,
        args.seed,
        workers,
        modes_json.join(",")
    );
    std::fs::write(out, &json).map_err(|e| format!("writing {out}: {e}"))?;
    println!("\nwrote {out}");
    Ok(())
}

/// One mode's results from the backlog burst-and-drain measurement.
struct BacklogResult {
    mode: &'static str,
    background_workers: usize,
    burst_wall_secs: f64,
    backlog_l0_files: usize,
    drain_wall_secs: f64,
    reads: u64,
    read_latency_ns: Histogram,
    flushes: u64,
    compactions: u64,
}

impl BacklogResult {
    fn p_us(&self, p: f64) -> f64 {
        self.read_latency_ns.percentile(p) as f64 / 1e3
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"mode\":\"{}\",\"background_workers\":{},",
                "\"burst_wall_secs\":{:.3},\"backlog_l0_files\":{},",
                "\"drain_wall_secs\":{:.3},\"reads\":{},",
                "\"read_p50_us\":{:.1},\"read_p99_us\":{:.1},\"read_p999_us\":{:.1},",
                "\"flushes\":{},\"compactions\":{}}}"
            ),
            self.mode,
            self.background_workers,
            self.burst_wall_secs,
            self.backlog_l0_files,
            self.drain_wall_secs,
            self.reads,
            self.p_us(50.0),
            self.p_us(99.0),
            self.p_us(99.9),
            self.flushes,
            self.compactions
        )
    }
}

/// Burst-loads a compaction backlog, then measures how long the pool takes
/// to drain it and what foreground point reads experience meanwhile.
// Host wall-clock again: the drain races real reader threads.
#[allow(clippy::disallowed_methods)]
fn run_backlog_mode(
    mode: &'static str,
    udc: bool,
    args: &CommonArgs,
    workers: usize,
    readers: u64,
) -> Result<BacklogResult, String> {
    let mut b = LdcDb::builder()
        .options(paper_scaled_options())
        .background_workers(workers)
        .max_subcompactions(4);
    if udc {
        b = b.udc_baseline();
    }
    let db = b.build().map_err(|e| e.to_string())?;
    let codec = args.codec();
    let preload = args.ops.max(1);
    for i in 0..preload {
        db.put(&codec.key(i), &codec.value(i, 0))
            .map_err(|e| format!("{mode} preload: {e}"))?;
    }
    db.drain_background();
    let s0 = db.stats();

    // Burst: overwrite the keyspace as fast as the write gates allow, so
    // flush/compaction debt piles up faster than the pool retires it.
    let t0 = Instant::now();
    for i in 0..args.ops {
        let idx = i % preload;
        db.put(&codec.key(idx), &codec.value(idx, 1 + i / preload))
            .map_err(|e| format!("{mode} burst: {e}"))?;
    }
    let burst_wall_secs = t0.elapsed().as_secs_f64();
    let backlog_l0_files = db.engine_ref().version().levels[0].len();

    // Drain while foreground readers measure what the backlog costs them.
    let stop = AtomicBool::new(false);
    let failed = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    let mut merged = Histogram::new();
    let mut drain_wall_secs = 0.0f64;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for r in 0..readers {
            let db = &db;
            let codec = &codec;
            let (stop, failed, reads) = (&stop, &failed, &reads);
            let seed = args.seed;
            handles.push(s.spawn(move || {
                let mut hist = Histogram::new();
                let mut rng = seed ^ (r + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                while !stop.load(Ordering::Relaxed) {
                    let key = codec.key(xorshift(&mut rng) % preload);
                    let t0 = Instant::now();
                    let got = db.get_pinned(&key);
                    hist.record(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                    match got {
                        Ok(Some(_)) => {}
                        Ok(None) => {
                            eprintln!("{mode}: reader {r} lost a preloaded key");
                            failed.store(true, Ordering::Relaxed);
                            return hist;
                        }
                        Err(e) => {
                            eprintln!("{mode}: reader {r} error: {e}");
                            failed.store(true, Ordering::Relaxed);
                            return hist;
                        }
                    }
                    reads.fetch_add(1, Ordering::Relaxed);
                }
                hist
            }));
        }
        let t1 = Instant::now();
        db.drain_background();
        drain_wall_secs = t1.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            merged.merge(&h.join().expect("reader thread panicked"));
        }
    });
    if failed.load(Ordering::Relaxed) {
        return Err(format!("{mode}: backlog drain race failed"));
    }
    let stats = db.stats();
    Ok(BacklogResult {
        mode,
        background_workers: workers,
        burst_wall_secs,
        backlog_l0_files,
        drain_wall_secs,
        reads: reads.load(Ordering::Relaxed),
        read_latency_ns: merged,
        flushes: stats.flushes - s0.flushes,
        compactions: (stats.merges + stats.trivial_moves + stats.links + stats.ldc_merges)
            - (s0.merges + s0.trivial_moves + s0.links + s0.ldc_merges),
    })
}

/// Single-threaded deterministic replay of the backlog shape: no reader
/// threads, `background_workers == 0`, everything stamped off the virtual
/// clock — two same-seed runs must emit byte-identical JSON.
fn backlog_det_json(udc: bool, args: &CommonArgs) -> Result<String, String> {
    let mode = if udc { "UDC" } else { "LDC" };
    let mut b = LdcDb::builder()
        .options(paper_scaled_options())
        .background_workers(0)
        .max_subcompactions(4);
    if udc {
        b = b.udc_baseline();
    }
    let db = b.build().map_err(|e| e.to_string())?;
    let codec = args.codec();
    let preload = args.ops.max(1);
    for i in 0..preload {
        db.put(&codec.key(i), &codec.value(i, 0))
            .map_err(|e| format!("{mode} det preload: {e}"))?;
    }
    db.drain_background();
    let s0 = db.stats();
    for i in 0..args.ops {
        let idx = i % preload;
        db.put(&codec.key(idx), &codec.value(idx, 1 + i / preload))
            .map_err(|e| format!("{mode} det burst: {e}"))?;
    }
    let backlog_l0_files = db.engine_ref().version().levels[0].len();
    let drain_virtual_nanos = db.drain_background();
    let stats = db.stats();
    Ok(format!(
        concat!(
            "{{\"mode\":\"{}\",\"backlog_l0_files\":{},",
            "\"drain_virtual_nanos\":{},\"flushes\":{},\"compactions\":{}}}"
        ),
        mode,
        backlog_l0_files,
        drain_virtual_nanos,
        stats.flushes - s0.flushes,
        (stats.merges + stats.trivial_moves + stats.links + stats.ldc_merges)
            - (s0.merges + s0.trivial_moves + s0.links + s0.ldc_merges),
    ))
}

fn run_backlog(
    args: CommonArgs,
    workers: usize,
    readers: u64,
    out: &str,
    det_out: Option<&str>,
) -> Result<(), String> {
    let udc = run_backlog_mode("UDC", true, &args, workers, readers)?;
    let ldc = run_backlog_mode("LDC", false, &args, workers, readers)?;

    let rows: Vec<Vec<String>> = [&udc, &ldc]
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                format!("{}", r.background_workers),
                format!("{:.3}", r.burst_wall_secs),
                format!("{}", r.backlog_l0_files),
                format!("{:.3}", r.drain_wall_secs),
                format!("{:.1}", r.p_us(50.0)),
                format!("{:.1}", r.p_us(99.0)),
                format!("{:.1}", r.p_us(99.9)),
                format!("{}", r.flushes),
                format!("{}", r.compactions),
            ]
        })
        .collect();
    print_table(
        args.csv,
        &format!(
            "compaction-backlog: {} burst writes, {} readers during drain ({}-byte values, host time)",
            args.ops, readers, args.value_bytes
        ),
        &[
            "system",
            "bg workers",
            "burst (s)",
            "L0 backlog",
            "drain (s)",
            "read p50 (us)",
            "read p99 (us)",
            "read p99.9 (us)",
            "flushes",
            "compactions",
        ],
        &rows,
    );

    let json = format!(
        concat!(
            "{{\"bench\":\"compaction-backlog\",\"ops\":{},\"readers\":{},",
            "\"value_bytes\":{},\"seed\":{},\"background_workers\":{},",
            "\"modes\":[{},{}]}}\n"
        ),
        args.ops,
        readers,
        args.value_bytes,
        args.seed,
        workers,
        udc.json(),
        ldc.json()
    );
    std::fs::write(out, &json).map_err(|e| format!("writing {out}: {e}"))?;
    println!("\nwrote {out}");

    if let Some(det_path) = det_out {
        let det = format!(
            "{{\"bench\":\"compaction-backlog-det\",\"ops\":{},\"value_bytes\":{},\"seed\":{},\"modes\":[{},{}]}}\n",
            args.ops,
            args.value_bytes,
            args.seed,
            backlog_det_json(true, &args)?,
            backlog_det_json(false, &args)?
        );
        std::fs::write(det_path, &det).map_err(|e| format!("writing {det_path}: {e}"))?;
        println!("wrote {det_path} (single-threaded, virtual clock)");
    }
    Ok(())
}

fn main() {
    let mut args = std::env::args().skip(1);
    let sub = match args.next() {
        Some(s) => s,
        None => usage(),
    };
    match sub.as_str() {
        "repair" => {
            let common = CommonArgs::from_iter(400, args);
            if let Err(detail) = run_repair(common) {
                eprintln!("repair pipeline FAILED: {detail}");
                std::process::exit(1);
            }
        }
        "backup" => {
            let common = CommonArgs::from_iter(300, args);
            if let Err(detail) = run_backup(common) {
                eprintln!("backup pipeline FAILED: {detail}");
                std::process::exit(1);
            }
        }
        "readwhilewriting" => {
            // Pull out the flags CommonArgs doesn't know before delegating
            // (its parser treats unknown flags as fatal).
            let mut readers = 4u64;
            let mut workers = 0usize;
            let mut quick = false;
            let mut out = "BENCH_readwhilewriting.json".to_string();
            let mut rest = Vec::new();
            let mut iter = args.peekable();
            while let Some(arg) = iter.next() {
                match arg.as_str() {
                    "--readers" => {
                        readers = iter
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| panic!("--readers: integer"))
                    }
                    "--workers" => {
                        workers = iter
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| panic!("--workers: integer"))
                    }
                    "--quick" => quick = true,
                    "--out" => out = iter.next().unwrap_or_else(|| panic!("--out needs a value")),
                    _ => rest.push(arg),
                }
            }
            let default_ops = if quick { 2_000 } else { 20_000 };
            let common = CommonArgs::from_iter(default_ops, rest);
            if let Err(detail) = run_read_while_writing(common, readers.max(1), workers, &out) {
                eprintln!("readwhilewriting FAILED: {detail}");
                std::process::exit(1);
            }
        }
        "compaction-backlog" => {
            let mut readers = 4u64;
            let mut workers = 2usize;
            let mut quick = false;
            let mut out = "BENCH_backlog.json".to_string();
            let mut det_out: Option<String> = None;
            let mut rest = Vec::new();
            let mut iter = args.peekable();
            while let Some(arg) = iter.next() {
                match arg.as_str() {
                    "--readers" => {
                        readers = iter
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| panic!("--readers: integer"))
                    }
                    "--workers" => {
                        workers = iter
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| panic!("--workers: integer"))
                    }
                    "--quick" => quick = true,
                    "--out" => out = iter.next().unwrap_or_else(|| panic!("--out needs a value")),
                    "--det-out" => {
                        det_out = Some(
                            iter.next()
                                .unwrap_or_else(|| panic!("--det-out needs a value")),
                        )
                    }
                    _ => rest.push(arg),
                }
            }
            let default_ops = if quick { 2_000 } else { 20_000 };
            let common = CommonArgs::from_iter(default_ops, rest);
            if let Err(detail) =
                run_backlog(common, workers, readers.max(1), &out, det_out.as_deref())
            {
                eprintln!("compaction-backlog FAILED: {detail}");
                std::process::exit(1);
            }
        }
        "tail" | "trace-report" => {
            let mut worst_k = 8usize;
            let mut quick = false;
            let mut out = "BENCH_tail.json".to_string();
            let mut rest = Vec::new();
            let mut iter = args.peekable();
            while let Some(arg) = iter.next() {
                match arg.as_str() {
                    "--k" => {
                        worst_k = iter
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| panic!("--k: integer"))
                    }
                    "--quick" => quick = true,
                    "--out" => out = iter.next().unwrap_or_else(|| panic!("--out needs a value")),
                    _ => rest.push(arg),
                }
            }
            let default_ops = if quick { 2_000 } else { 20_000 };
            let common = CommonArgs::from_iter(default_ops, rest);
            let result = if sub == "tail" {
                run_tail(common, worst_k.max(1), &out)
            } else {
                run_trace_report(common, worst_k.max(1))
            };
            if let Err(detail) = result {
                eprintln!("{sub} FAILED: {detail}");
                std::process::exit(1);
            }
        }
        "ycsb-net" => {
            let mut net = ldc_bench::NetBenchArgs {
                common: CommonArgs::from_iter(3_000, std::iter::empty::<String>()),
                shards: 4,
                queue_capacity: 64,
                rate_per_sec: 20_000.0,
                closed_only: false,
                out: "BENCH_net.json".to_string(),
            };
            let mut quick = false;
            let mut rest = Vec::new();
            let mut iter = args.peekable();
            while let Some(arg) = iter.next() {
                match arg.as_str() {
                    "--shards" => {
                        net.shards = iter
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| panic!("--shards: integer"))
                    }
                    "--queue-capacity" => {
                        net.queue_capacity = iter
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| panic!("--queue-capacity: integer"))
                    }
                    "--rate" => {
                        net.rate_per_sec = iter
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| panic!("--rate: number"))
                    }
                    "--closed-only" => net.closed_only = true,
                    "--quick" => quick = true,
                    "--out" => {
                        net.out = iter.next().unwrap_or_else(|| panic!("--out needs a value"))
                    }
                    _ => rest.push(arg),
                }
            }
            let default_ops = if quick { 800 } else { 3_000 };
            net.common = CommonArgs::from_iter(default_ops, rest);
            net.shards = net.shards.max(1);
            net.queue_capacity = net.queue_capacity.max(1);
            if let Err(detail) = ldc_bench::run_ycsb_net(&net) {
                eprintln!("ycsb-net FAILED: {detail}");
                std::process::exit(1);
            }
        }
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown subcommand: {other}");
            usage();
        }
    }
}
