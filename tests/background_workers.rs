//! Threaded background execution: the `background_workers >= 1` pool must
//! preserve every logical guarantee of the inline pump — same store
//! contents as an unsplit inline run (subcompactions are invisible),
//! checkpoint/scrub safety under concurrent installs, and clean recovery
//! from crashes that tear mid-subcompaction output files.
//!
//! Threaded runs promise linearizability, not timing reproducibility
//! (DESIGN.md §10/§15), so these tests assert values and invariants,
//! never virtual-clock readings.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use ldc_chaos::{FaultPlan, FaultStorage};
use ldc_core::LdcDb;
use ldc_lsm::{repair_db, Options};
use ldc_ssd::{MemStorage, SsdConfig, SsdDevice, StorageBackend};
use proptest::prelude::*;

fn tiny_options() -> Options {
    Options {
        memtable_bytes: 4 << 10,
        sstable_bytes: 4 << 10,
        l1_capacity_bytes: 16 << 10,
        block_bytes: 1 << 10,
        ..Options::default()
    }
}

fn key(k: u32) -> Vec<u8> {
    // Hash-spread so upper files overlap several lower files and merges
    // have real split boundaries.
    format!("{:08x}", (k as u64).wrapping_mul(0x9e37_79b9)).into_bytes()
}

fn value(k: u32, v: u32) -> Vec<u8> {
    let mut out = format!("v{v:05}k{k:05}").into_bytes();
    out.resize(160, b'.');
    out
}

fn build(udc: bool, workers: usize, storage: Option<Arc<dyn StorageBackend>>) -> LdcDb {
    let mut b = LdcDb::builder()
        .options(tiny_options())
        .background_workers(workers)
        .max_subcompactions(4);
    if udc {
        b = b.udc_baseline();
    }
    if let Some(s) = storage {
        b = b.storage(s);
    }
    b.build().expect("open")
}

/// Applies a deterministic workload of puts, overwrites, and deletes and
/// returns the model contents.
fn apply_workload(db: &LdcDb, rounds: u32, keys: u32) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let mut model = BTreeMap::new();
    for r in 0..rounds {
        for k in 0..keys {
            if (k + r) % 13 == 0 {
                db.delete(&key(k)).unwrap();
                model.remove(&key(k));
            } else {
                db.put(&key(k), &value(k, r)).unwrap();
                model.insert(key(k), value(k, r));
            }
        }
    }
    model
}

/// Full logical contents via an unbounded scan from the empty prefix.
fn contents(db: &LdcDb) -> BTreeMap<Vec<u8>, Vec<u8>> {
    db.scan(b"", usize::MAX).unwrap().into_iter().collect()
}

/// Workers run real flushes and compactions off the write path, and the
/// store ends exactly at the model.
fn threaded_smoke(udc: bool) {
    let db = build(udc, 2, None);
    let model = apply_workload(&db, 6, 700);
    db.drain_background();
    let stats = db.stats();
    assert!(stats.flushes > 0, "workload must force flushes: {stats:?}");
    assert!(
        stats.merges + stats.trivial_moves + stats.links + stats.ldc_merges > 0,
        "workload must force compactions: {stats:?}"
    );
    assert_eq!(contents(&db), model);
    db.engine_ref().version().check_invariants().unwrap();
}

#[test]
fn threaded_smoke_udc() {
    threaded_smoke(true);
}

#[test]
fn threaded_smoke_ldc() {
    threaded_smoke(false);
}

/// The subcompaction boundary contract: a store grown with split merges
/// (workers + max_subcompactions) holds exactly the same logical contents
/// as one grown inline, where every merge is a single unsplit stream.
fn split_matches_unsplit(udc: bool, rounds: u32, keys: u32) {
    let inline_db = build(udc, 0, None);
    let threaded_db = build(udc, 3, None);
    let model = apply_workload(&inline_db, rounds, keys);
    let model2 = apply_workload(&threaded_db, rounds, keys);
    assert_eq!(model, model2);
    inline_db.drain_background();
    threaded_db.drain_background();
    assert_eq!(contents(&inline_db), model, "inline diverged from model");
    assert_eq!(
        contents(&threaded_db),
        model,
        "threaded diverged from model"
    );
    inline_db.engine_ref().version().check_invariants().unwrap();
    threaded_db
        .engine_ref()
        .version()
        .check_invariants()
        .unwrap();
}

#[test]
fn subcompactions_match_inline_udc() {
    split_matches_unsplit(true, 8, 900);
}

#[test]
fn subcompactions_match_inline_ldc() {
    split_matches_unsplit(false, 8, 900);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Property form of the boundary contract over random workload shapes,
    /// in both compaction modes.
    #[test]
    fn split_merge_equivalence(
        udc in any::<bool>(),
        rounds in 2u32..6,
        keys in 200u32..700,
    ) {
        split_matches_unsplit(udc, rounds, keys);
    }
}

/// A checkpoint taken while workers are mid-compaction must capture every
/// write acknowledged before the checkpoint call, and restore into a
/// consistent store.
#[test]
fn checkpoint_races_threaded_compaction() {
    let db = build(false, 3, None);
    let before = apply_workload(&db, 4, 600);
    // Kick off a fresh burst so compactions are in flight while the
    // checkpoint's flush phase runs.
    let ckpt = std::thread::scope(|s| {
        let db = &db;
        s.spawn(move || {
            for k in 0..600u32 {
                db.put(&key(k + 10_000), &value(k, 99)).unwrap();
            }
        });
        db.checkpoint("racy").unwrap()
    });
    assert!(ckpt.files_linked > 0);
    db.drain_background();

    // Restore into a fresh store and verify the pre-checkpoint state.
    let restored_storage: Arc<dyn StorageBackend> =
        MemStorage::new(SsdDevice::new(SsdConfig::default()));
    ldc_lsm::restore_checkpoint(
        db.storage(),
        &ldc_lsm::checkpoint_prefix("racy"),
        &restored_storage,
    )
    .unwrap();
    let restored = build(false, 0, Some(restored_storage));
    restored.engine_ref().version().check_invariants().unwrap();
    for (k, v) in &before {
        assert_eq!(
            restored.get(k).unwrap().as_deref(),
            Some(v.as_slice()),
            "checkpoint lost a pre-checkpoint key"
        );
    }
}

/// Scrubbing while workers install compactions: the pass must never trip
/// over a concurrently reaped file, and a store with no injected faults
/// always scrubs clean.
#[test]
fn scrub_races_threaded_compaction() {
    let db = build(false, 3, None);
    apply_workload(&db, 3, 500);
    std::thread::scope(|s| {
        let db = &db;
        s.spawn(move || {
            for r in 0..4u32 {
                for k in 0..500u32 {
                    db.put(&key(k), &value(k, 10 + r)).unwrap();
                }
            }
        });
        for _ in 0..6 {
            let report = db.scrub().expect("scrub must not race the reaper");
            assert!(report.is_clean(), "no faults injected: {report:?}");
        }
    });
    db.drain_background();
    let report = db.scrub().unwrap();
    assert!(report.is_clean());
    assert!(report.tables_scanned > 0);
}

/// Crash mid-run (including mid-subcompaction chunked writes): after a
/// power cycle and repair, the reopened store must be consistent — no
/// SSTable referenced twice, no orphan files left behind, and every
/// surviving key maps to a value that was actually written.
fn crash_sweep_point(udc: bool, crash_op: u64, seed: u64) {
    let mem: Arc<dyn StorageBackend> = MemStorage::new(SsdDevice::new(SsdConfig::default()));
    let fault = FaultStorage::new(mem, FaultPlan::crash_at(seed, crash_op));
    let storage: Arc<dyn StorageBackend> = fault.clone();

    let db = build(udc, 3, Some(Arc::clone(&storage)));
    let mut acked: BTreeMap<Vec<u8>, BTreeSet<Vec<u8>>> = BTreeMap::new();
    'outer: for r in 0..6u32 {
        for k in 0..500u32 {
            match db.put(&key(k), &value(k, r)) {
                Ok(()) => acked.entry(key(k)).or_default().insert(value(k, r)),
                Err(_) => break 'outer, // power went off
            };
        }
    }
    drop(db); // "crash": workers join, nothing is flushed on purpose
    fault.power_cycle().unwrap();

    let repair = repair_db(Arc::clone(&storage), &tiny_options()).unwrap();
    let reopened = build(udc, 0, Some(Arc::clone(&storage)));
    let version = reopened.engine_ref().version();
    version.check_invariants().unwrap();

    // No SSTable may be referenced by two version slots.
    let mut seen = BTreeSet::new();
    for files in &version.levels {
        for f in files {
            assert!(seen.insert(f.number), "file {} referenced twice", f.number);
        }
    }
    for number in version.frozen.keys() {
        assert!(seen.insert(*number), "frozen {number} referenced twice");
    }

    // Surviving values must be values we actually wrote (prefix-of-history
    // consistency; durability of unsynced tails is out of scope here).
    for (k, versions) in &acked {
        if let Some(v) = reopened.get(k).unwrap() {
            assert!(
                versions.contains(&v),
                "key {k:?} holds a value that was never written"
            );
        }
    }

    // Repair reclaimed whatever the crash orphaned; a second pass over the
    // repaired store must find nothing left to do.
    let again = repair_db(Arc::clone(&storage), &tiny_options()).unwrap();
    assert_eq!(
        again.orphans_deleted, 0,
        "first repair (orphans={}) left orphans behind",
        repair.orphans_deleted
    );
}

#[test]
fn crash_mid_subcompaction_sweep_udc() {
    for (i, crash_op) in [120u64, 600, 1800, 4200].into_iter().enumerate() {
        crash_sweep_point(true, crash_op, 0x0BAD_5EED + i as u64);
    }
}

#[test]
fn crash_mid_subcompaction_sweep_ldc() {
    for (i, crash_op) in [120u64, 600, 1800, 4200].into_iter().enumerate() {
        crash_sweep_point(false, crash_op, 0xFEED_BEEF + i as u64);
    }
}
