//! Fixture-driven tests: one failing and one passing snippet per rule
//! family, exercising the public rule APIs exactly as `lint_workspace`
//! does. The snippets live in `tests/fixtures/` so they double as
//! documentation of what each rule accepts and rejects.

use ldc_lint::graph::Workspace;
use ldc_lint::lexer::SourceView;
use ldc_lint::rules::{determinism, layering, lock_order, panic_safety, taint};
use ldc_lint::Severity;

fn errors_of(diags: &[ldc_lint::Diagnostic]) -> Vec<&ldc_lint::Diagnostic> {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect()
}

#[test]
fn determinism_fixture_fail() {
    let view = SourceView::new(include_str!("fixtures/determinism_fail.rs"));
    let diags = determinism::check_file("crates/lsm/src/fixture.rs", &view);
    let errs = errors_of(&diags);
    assert_eq!(errs.len(), 4, "{diags:?}"); // use std::time, Instant::now, rand::random, HashMap iter
    assert!(errs.iter().any(|d| d.message.contains("Instant::now")));
    assert!(errs.iter().any(|d| d.message.contains("rand::random")));
    assert!(errs.iter().any(|d| d.message.contains("HashMap")));
    // Out-of-scope crates are untouched (bench may measure host time).
    assert!(
        determinism::check_file("crates/bench/src/fixture.rs", &view).is_empty()
            || !determinism::in_scope("crates/bench/src/fixture.rs")
    );
}

#[test]
fn determinism_fixture_pass() {
    let view = SourceView::new(include_str!("fixtures/determinism_pass.rs"));
    let diags = determinism::check_file("crates/lsm/src/fixture.rs", &view);
    assert!(errors_of(&diags).is_empty(), "{diags:?}");
}

#[test]
fn panic_safety_fixture_fail() {
    let view = SourceView::new(include_str!("fixtures/panic_safety_fail.rs"));
    let (counts, sites) = panic_safety::count_sites(&view);
    assert_eq!(counts.panics, 3, "{sites:?}");
    assert_eq!(counts.indexes, 1, "{sites:?}");
    // With no baseline entry, every site is an error.
    let files = vec![("crates/lsm/src/wal.rs".to_string(), view)];
    let diags = panic_safety::check(&files, &panic_safety::Baseline::new());
    assert_eq!(errors_of(&diags).len(), 4, "{diags:?}");
}

#[test]
fn panic_safety_fixture_pass() {
    let view = SourceView::new(include_str!("fixtures/panic_safety_pass.rs"));
    let (counts, sites) = panic_safety::count_sites(&view);
    assert_eq!(counts.panics, 0, "{sites:?}");
    assert_eq!(counts.indexes, 0, "{sites:?}"); // the one index is suppressed with a reason
}

#[test]
fn panic_safety_ratchet_blocks_regressions() {
    let view = SourceView::new(include_str!("fixtures/panic_safety_fail.rs"));
    let files = vec![("crates/lsm/src/wal.rs".to_string(), view)];
    let mut tight = panic_safety::Baseline::new();
    tight.insert(
        "crates/lsm/src/wal.rs".to_string(),
        panic_safety::Counts {
            panics: 2,
            indexes: 1,
        },
    );
    let diags = panic_safety::check(&files, &tight);
    assert!(
        diags.iter().any(|d| d.message.contains("ratchet violated")),
        "{diags:?}"
    );
}

const DESIGN: &str = "[[lock]]\nid = \"lsm/db::tables\"\nrank = 10\n\n\
                      [[lock]]\nid = \"lsm/cache::inner\"\nrank = 20\n\n\
                      [[lock]]\nid = \"obs/metrics::levels\"\nrank = 30\n";
const DB_DECL: &str = "struct Db { tables: Mutex<u32> }\n";
const METRICS_DECL: &str = "struct Metrics { levels: Mutex<u32> }\n";

fn lock_order_run(cache_src: &str) -> Vec<ldc_lint::Diagnostic> {
    let files = vec![
        ("crates/lsm/src/db.rs".to_string(), SourceView::new(DB_DECL)),
        (
            "crates/lsm/src/cache.rs".to_string(),
            SourceView::new(cache_src),
        ),
        ("crates/obs/src/sink.rs".to_string(), SourceView::new("")),
        (
            "crates/obs/src/metrics.rs".to_string(),
            SourceView::new(METRICS_DECL),
        ),
    ];
    lock_order::check(&files, DESIGN)
}

#[test]
fn lock_order_fixture_fail() {
    let diags = lock_order_run(include_str!("fixtures/lock_order_fail.rs"));
    let errs = errors_of(&diags);
    assert!(
        errs.iter()
            .any(|d| d.message.contains("violates the declared order")),
        "{diags:?}"
    );
    assert!(
        errs.iter().any(|d| d.message.contains("re-entrant")),
        "{diags:?}"
    );
}

#[test]
fn lock_order_fixture_pass() {
    let diags = lock_order_run(include_str!("fixtures/lock_order_pass.rs"));
    assert!(errors_of(&diags).is_empty(), "{diags:?}");
}

#[test]
fn layering_fixture_fail() {
    let manifest = include_str!("fixtures/layering_fail.toml");
    let diags = layering::check_manifest("crates/ssd/Cargo.toml", manifest);
    assert_eq!(errors_of(&diags).len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("must not depend on `ldc-lsm`"));

    let view = SourceView::new(include_str!("fixtures/layering_fail.rs"));
    let diags = layering::check_source("crates/lsm/src/compaction.rs", &view);
    assert_eq!(errors_of(&diags).len(), 2, "{diags:?}"); // `use` line + type path use site
}

#[test]
fn layering_fixture_pass() {
    let manifest = include_str!("fixtures/layering_pass.toml");
    assert!(layering::check_manifest("crates/lsm/Cargo.toml", manifest).is_empty());

    let view = SourceView::new(include_str!("fixtures/layering_pass.rs"));
    let diags = layering::check_source("crates/lsm/src/compaction.rs", &view);
    assert!(errors_of(&diags).is_empty(), "{diags:?}");
}

#[test]
fn layering_net_tier_fixture_fail() {
    // Server reaching under the core facade to the engine crate.
    let manifest = include_str!("fixtures/layering_net_fail.toml");
    let diags = layering::check_manifest("crates/server/Cargo.toml", manifest);
    assert_eq!(errors_of(&diags).len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("must not depend on `ldc-lsm`"));

    // Client referencing the server — the arrow must point the other way.
    let view = SourceView::new(include_str!("fixtures/layering_net_fail.rs"));
    let diags = layering::check_source("crates/client/src/client.rs", &view);
    assert_eq!(errors_of(&diags).len(), 2, "{diags:?}"); // `use` line + qualified path
    assert!(diags[0].message.contains("ldc_server"));
}

#[test]
fn layering_net_tier_allowances() {
    // The real dependency direction passes: server -> client/core/obs.
    let ok = "[package]\nname = \"ldc-server\"\n\n[dependencies]\n\
              ldc-obs.workspace = true\nldc-core.workspace = true\n\
              ldc-client.workspace = true\n";
    assert!(layering::check_manifest("crates/server/Cargo.toml", ok).is_empty());
    let view = SourceView::new("use ldc_client::proto::Request;\nuse ldc_core::LdcDb;\n");
    assert!(layering::check_source("crates/server/src/server.rs", &view).is_empty());

    // But the server must use core's re-exports, not the engine directly.
    let bad = SourceView::new("use ldc_lsm::Options;\n");
    let diags = layering::check_source("crates/server/src/server.rs", &bad);
    assert_eq!(errors_of(&diags).len(), 1, "{diags:?}");
}

// Stub declarations for every sink file the taint fixtures reference.
// Paths must match the SINKS table suffixes exactly; each file declares
// all of its table entries so the missing-sink diagnostic stays quiet.
const WAL_STUB: &str = "pub struct LogWriter;\nimpl LogWriter {\n    \
     pub fn add_record(&mut self, payload: &[u8]) -> Result<(), ()> { let _ = payload; Ok(()) }\n    \
     pub fn emit(&mut self, kind: u8, payload: &[u8]) -> Result<(), ()> { let _ = (kind, payload); Ok(()) }\n}\n";
const BUILDER_STUB: &str = "pub struct TableBuilder;\nimpl TableBuilder {\n    \
     pub fn add(&mut self, key: &[u8], value: &[u8]) { let _ = (key, value); }\n    \
     pub fn finish(&mut self) -> u64 { 0 }\n}\n";
const VERSION_STUB: &str = "pub struct VersionEdit;\nimpl VersionEdit {\n    \
     pub fn encode(&self) -> Vec<u8> { Vec::new() }\n}\n\
     pub struct VersionSet;\nimpl VersionSet {\n    \
     pub fn log_and_apply(&mut self, seq: u64) { let _ = seq; }\n    \
     pub fn write_snapshot_manifest(&mut self) {}\n}\n";
const CLOCK_STUB: &str = "pub struct VirtualClock;\nimpl VirtualClock {\n    \
     pub fn advance(&self, d: u64) -> u64 { d }\n    \
     pub fn advance_micros(&self, m: u64) -> u64 { m }\n    \
     pub fn rewind_to(&self, t: u64) { let _ = t; }\n}\n";
const PROTO_STUB: &str =
    "pub fn encode_request(id: u64, op: u64) -> Vec<u8> { let _ = (id, op); Vec::new() }\n\
     pub fn encode_response(id: u64) -> Vec<u8> { let _ = id; Vec::new() }\n";
const YCSB_STUB: &str = "pub struct ClosedResult;\nimpl ClosedResult {\n    \
     pub fn json(&self, seed: u64) -> String { let _ = seed; String::new() }\n}\n";

fn taint_run(fixture_src: &str) -> Vec<ldc_lint::Diagnostic> {
    let files: Vec<(String, SourceView)> = vec![
        (
            "crates/lsm/src/wal.rs".to_string(),
            SourceView::new(WAL_STUB),
        ),
        (
            "crates/lsm/src/table/builder.rs".to_string(),
            SourceView::new(BUILDER_STUB),
        ),
        (
            "crates/lsm/src/version.rs".to_string(),
            SourceView::new(VERSION_STUB),
        ),
        (
            "crates/ssd/src/clock.rs".to_string(),
            SourceView::new(CLOCK_STUB),
        ),
        (
            "crates/client/src/proto.rs".to_string(),
            SourceView::new(PROTO_STUB),
        ),
        (
            "crates/bench/src/ycsb_net.rs".to_string(),
            SourceView::new(YCSB_STUB),
        ),
        (
            "crates/server/src/fixture.rs".to_string(),
            SourceView::new(fixture_src),
        ),
    ];
    let ws = Workspace::build(&files);
    taint::check(&ws, &files)
}

#[test]
fn taint_fixture_fail_flags_every_sink_class() {
    let diags = taint_run(include_str!("fixtures/taint_fail.rs"));
    let errs = errors_of(&diags);
    assert_eq!(errs.len(), 6, "{diags:?}"); // one flow per sink class
    for class in [
        "wal",
        "sstable",
        "manifest",
        "virtual-clock",
        "wire",
        "bench-json",
    ] {
        assert!(
            errs.iter()
                .any(|d| d.message.contains(&format!("({class})"))),
            "no finding for sink class {class}: {diags:?}"
        );
    }
    // Every finding names the tainted local that flowed in.
    assert!(
        errs.iter()
            .all(|d| d.message.contains("host-derived value")),
        "{diags:?}"
    );
}

#[test]
fn taint_fixture_pass_is_clean() {
    let diags = taint_run(include_str!("fixtures/taint_pass.rs"));
    assert!(errors_of(&diags).is_empty(), "{diags:?}");
}

#[test]
fn json_output_is_parseable_shape() {
    let d = ldc_lint::Diagnostic::error(
        "crates/lsm/src/db.rs",
        42,
        "determinism",
        "forbidden \"token\"",
        "use the virtual clock",
    );
    let j = d.to_json();
    assert!(j.starts_with('{') && j.ends_with('}'));
    for key in [
        "\"file\":",
        "\"line\":42",
        "\"rule\":",
        "\"severity\":\"error\"",
        "\"message\":",
        "\"suggestion\":",
    ] {
        assert!(j.contains(key), "missing {key} in {j}");
    }
}
