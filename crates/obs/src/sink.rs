//! Event sink implementations.

use crate::{Event, EventSink};
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::lockcheck::Mutex;

/// The shared-ownership sink handle every layer of the stack holds.
pub type SharedSink = Arc<dyn EventSink>;

/// Discards everything. [`EventSink::enabled`] returns `false`, so hot
/// paths skip event construction entirely — tracing off costs one
/// virtual call and nothing else.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl EventSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: Event) {}
}

/// Bounded in-memory recorder. When full, the *oldest* event is dropped
/// so the buffer always holds the most recent window — the right
/// behaviour for "what just caused this latency spike?" queries.
pub struct RingBufferSink {
    capacity: usize,
    buffer: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl std::fmt::Debug for RingBufferSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Lock-free on purpose: Debug must not block a recording thread.
        f.debug_struct("RingBufferSink")
            .field("capacity", &self.capacity)
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl RingBufferSink {
    /// A recorder holding at most `capacity` events (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            buffer: Mutex::new(
                "obs/sink::buffer",
                VecDeque::with_capacity(capacity.clamp(1, 4096)),
            ),
            dropped: AtomicU64::new(0),
        }
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buffer.lock().iter().cloned().collect()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.buffer.lock().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many events were evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drops all buffered events (the dropped counter is unaffected).
    pub fn clear(&self) {
        self.buffer.lock().clear();
    }
}

impl EventSink for RingBufferSink {
    fn record(&self, event: Event) {
        let mut buffer = self.buffer.lock();
        if buffer.len() == self.capacity {
            buffer.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buffer.push_back(event);
    }
}

/// Writes one JSON object per line to any `Write` target. Pair with
/// [`Event::from_json`] to read the stream back.
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // No `W: Debug` bound: any writer stays usable.
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        Self {
            writer: Mutex::new("obs/sink::writer", writer),
        }
    }

    /// Flushes and returns the writer.
    pub fn into_inner(self) -> W {
        let mut w = self.writer.into_inner();
        let _ = w.flush();
        w
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn record(&self, event: Event) {
        let mut w = self.writer.lock();
        // Sink errors must never take down the engine; drop the event.
        let _ = writeln!(w, "{}", event.to_json());
    }
}

/// Parses a JSONL stream produced by [`JsonlSink`], skipping blank
/// lines; returns `None` if any non-blank line fails to parse.
pub fn parse_jsonl(text: &str) -> Option<Vec<Event>> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(Event::from_json)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    fn ev(start: u64) -> Event {
        Event::span(EventKind::Flush, start, start + 10)
    }

    #[test]
    fn noop_is_disabled() {
        let sink = NoopSink;
        assert!(!sink.enabled());
        sink.record(ev(0)); // must not panic
    }

    #[test]
    fn ring_buffer_bounded_drop_oldest() {
        let sink = RingBufferSink::new(3);
        assert!(sink.enabled());
        for i in 0..5 {
            sink.record(ev(i * 100));
        }
        let events = sink.events();
        assert_eq!(events.len(), 3);
        // Oldest two (starts 0 and 100) were dropped.
        assert_eq!(
            events.iter().map(|e| e.start_nanos).collect::<Vec<_>>(),
            vec![200, 300, 400]
        );
        assert_eq!(sink.dropped(), 2);
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 2);
    }

    #[test]
    fn ring_buffer_capacity_floor() {
        let sink = RingBufferSink::new(0);
        sink.record(ev(1));
        sink.record(ev(2));
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn jsonl_roundtrip() {
        let sink = JsonlSink::new(Vec::new());
        let a = ev(5).levels(0, 1).bytes(100, 90);
        let b = Event::span(EventKind::SsdGc, 50, 60)
            .files(0, 0)
            .bytes(8, 2);
        sink.record(a.clone());
        sink.record(b.clone());
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 2);
        let parsed = parse_jsonl(&text).expect("parse");
        assert_eq!(parsed, vec![a, b]);
    }

    #[test]
    fn jsonl_parse_rejects_corrupt_line() {
        assert!(parse_jsonl("{\"kind\":\"flush\"}\nnot json\n").is_none());
        assert_eq!(parse_jsonl("\n\n").unwrap(), vec![]);
    }

    #[test]
    fn shared_sink_is_object_safe() {
        let sink: SharedSink = std::sync::Arc::new(RingBufferSink::new(8));
        if sink.enabled() {
            sink.record(ev(1));
        }
        assert!(sink.enabled());
    }
}
