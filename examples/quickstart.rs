//! Quickstart: open an LDC store, write, read, scan, and inspect what the
//! lower-level driven compaction machinery did underneath.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ldc::LdcDb;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A store with the paper's defaults: 2 MiB SSTables, fan-out 10,
    // SliceLink threshold = fan-out, on a simulated enterprise SSD.
    let db = LdcDb::builder().build()?;

    // Basic key-value operations.
    db.put(b"user:1001:name", b"Ada Lovelace")?;
    db.put(b"user:1001:city", b"London")?;
    db.put(b"user:1002:name", b"Alan Turing")?;
    assert_eq!(db.get(b"user:1001:name")?, Some(b"Ada Lovelace".to_vec()));

    db.delete(b"user:1001:city")?;
    assert_eq!(db.get(b"user:1001:city")?, None);

    // Atomic batches.
    let mut batch = ldc::WriteBatch::new();
    batch.put(b"user:1003:name", b"Grace Hopper");
    batch.put(b"user:1003:city", b"New York");
    db.write(batch)?;

    // Range scans (sorted by key).
    for (key, value) in db.scan(b"user:", 10)? {
        println!(
            "{} = {}",
            String::from_utf8_lossy(&key),
            String::from_utf8_lossy(&value)
        );
    }

    // Push enough data through to make the LSM-tree work for a living.
    println!("\nloading 40k records ...");
    for i in 0..40_000u64 {
        let key = format!("event:{:012x}", i.wrapping_mul(0x9e3779b97f4a7c15));
        let value = vec![b'x'; 1024];
        db.put(key.as_bytes(), &value)?;
    }
    db.drain_background();

    let stats = db.stats();
    let io = db.device().io_stats();
    let wear = db.device().snapshot();
    println!("\n-- what LDC did underneath --");
    println!("memtable flushes      : {}", stats.flushes);
    println!(
        "link operations       : {}  (metadata-only freezes)",
        stats.links
    );
    println!(
        "ldc merges            : {}  (lower-level driven)",
        stats.ldc_merges
    );
    println!(
        "udc merges            : {}  (should be 0 under LDC)",
        stats.merges
    );
    println!(
        "compaction I/O        : {:.1} MiB read, {:.1} MiB written",
        io.compaction_read_bytes() as f64 / 1048576.0,
        io.compaction_write_bytes() as f64 / 1048576.0
    );
    println!(
        "device write amp (FTL): {:.3}; mean erase count {:.2}",
        wear.ftl.write_amplification(),
        wear.mean_erase_count
    );
    println!("virtual time elapsed  : {:.3} s", wear.now as f64 / 1e9);
    Ok(())
}
