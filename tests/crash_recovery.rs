//! Crash-recovery integration tests across the full stack: data written
//! through the public API must survive abrupt reopen (no shutdown hook
//! exists at all — every drop is a "crash"), including mid-stream LDC
//! link/merge state, and property-tested against an in-memory model.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use ldc::ssd::{MemStorage, SsdConfig, SsdDevice, StorageBackend};
use ldc::{LdcDb, Options};

fn tiny_options() -> Options {
    Options {
        memtable_bytes: 4 << 10,
        sstable_bytes: 4 << 10,
        l1_capacity_bytes: 16 << 10,
        block_bytes: 1 << 10,
        ..Options::default()
    }
}

fn open(storage: &Arc<dyn StorageBackend>, udc: bool) -> LdcDb {
    let mut builder = LdcDb::builder()
        .options(tiny_options())
        .storage(Arc::clone(storage));
    if udc {
        builder = builder.udc_baseline();
    }
    builder.build().expect("open")
}

fn key(k: u16) -> Vec<u8> {
    format!("{:08x}", (k as u64).wrapping_mul(0x9e37_79b9)).into_bytes()
}

fn value(k: u16, v: u16) -> Vec<u8> {
    let mut out = format!("v{v:05}k{k:05}").into_bytes();
    out.resize(200, b'.');
    out
}

#[test]
fn reopen_preserves_everything_across_generations() {
    for udc in [false, true] {
        let storage: Arc<dyn StorageBackend> =
            MemStorage::new(SsdDevice::new(SsdConfig::default()));
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        // Five sessions, each writing a slab then "crashing".
        for session in 0u16..5 {
            let db = open(&storage, udc);
            for k in 0..400u16 {
                if (k + session) % 11 == 0 {
                    db.delete(&key(k)).unwrap();
                    model.remove(&key(k));
                } else {
                    db.put(&key(k), &value(k, session)).unwrap();
                    model.insert(key(k), value(k, session));
                }
            }
            // Verify a sample inside the session too.
            for k in (0..400u16).step_by(37) {
                assert_eq!(db.get(&key(k)).unwrap().as_ref(), model.get(&key(k)));
            }
        }
        let db = open(&storage, udc);
        let all = db.scan(b"", usize::MAX).unwrap();
        let want: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(a, b)| (a.clone(), b.clone())).collect();
        assert_eq!(all, want, "udc={udc}");
        db.engine_ref().version().check_invariants().unwrap();
    }
}

#[test]
fn unflushed_wal_tail_survives() {
    let storage: Arc<dyn StorageBackend> = MemStorage::new(SsdDevice::new(SsdConfig::default()));
    {
        let db = open(&storage, false);
        // A handful of writes — too few to flush; they live only in WALs.
        for k in 0..5u16 {
            db.put(&key(k), &value(k, 1)).unwrap();
        }
    }
    let db = open(&storage, false);
    for k in 0..5u16 {
        assert_eq!(db.get(&key(k)).unwrap(), Some(value(k, 1)));
    }
}

#[test]
fn ldc_frozen_state_reloads_and_keeps_working() {
    let storage: Arc<dyn StorageBackend> = MemStorage::new(SsdDevice::new(SsdConfig::default()));
    {
        let db = open(&storage, false);
        for round in 0u16..3 {
            for k in 0..500u16 {
                db.put(&key(k), &value(k, round)).unwrap();
            }
        }
        let v = db.engine_ref().version();
        assert!(
            v.frozen_files() > 0 || v.total_slice_links() > 0,
            "want live LDC metadata before the crash"
        );
    }
    let db = open(&storage, false);
    db.engine_ref().version().check_invariants().unwrap();
    for k in (0..500u16).step_by(23) {
        assert_eq!(db.get(&key(k)).unwrap(), Some(value(k, 2)), "key {k}");
    }
    // Continue operating after recovery: more pressure, then verify again.
    for k in 0..500u16 {
        db.put(&key(k), &value(k, 9)).unwrap();
    }
    for k in (0..500u16).step_by(41) {
        assert_eq!(db.get(&key(k)).unwrap(), Some(value(k, 9)));
    }
    db.engine_ref().version().check_invariants().unwrap();
}

#[test]
fn policy_can_change_across_restarts() {
    // Open with LDC, write, crash; reopen with UDC (and back). The on-disk
    // format is shared; a UDC session must be able to read (and compact)
    // a store containing frozen files and slices is NOT required — but it
    // must at least refuse gracefully or work. We assert the stronger
    // property our engine provides: reads work because the read path is
    // policy-independent.
    let storage: Arc<dyn StorageBackend> = MemStorage::new(SsdDevice::new(SsdConfig::default()));
    {
        let db = open(&storage, false);
        for k in 0..600u16 {
            db.put(&key(k), &value(k, 1)).unwrap();
        }
    }
    {
        let db = open(&storage, true); // UDC session
        for k in (0..600u16).step_by(29) {
            assert_eq!(db.get(&key(k)).unwrap(), Some(value(k, 1)));
        }
        // Light writes are fine as long as UDC's picker never selects a
        // sliced file; with slices present the engine may reject a UDC
        // merge — accept either clean success or a clean error, never
        // corruption.
        for k in 0..50u16 {
            if db.put(&key(k), &value(k, 2)).is_err() {
                return;
            }
        }
        db.engine_ref().version().check_invariants().unwrap();
    }
    let db = open(&storage, false); // back to LDC
    db.engine_ref().version().check_invariants().unwrap();
    assert!(db.get(&key(3)).unwrap().is_some());
}

/// Replays the recorded proptest regression (`cut = 1, udc = false` in
/// crash_recovery.proptest-regressions) as a plain test: the offline
/// proptest shim generates fresh cases but does not re-run recorded seeds,
/// so the historical failure is pinned here explicitly. One acknowledged
/// write living only in the WAL must survive a crash of an LDC store.
#[test]
fn regression_single_wal_write_survives_ldc_crash() {
    let storage: Arc<dyn StorageBackend> = MemStorage::new(SsdDevice::new(SsdConfig::default()));
    {
        let db = open(&storage, false);
        db.put(&key(0), &value(0, 0)).unwrap();
    } // crash with the write only in the WAL
    let db = open(&storage, false);
    assert_eq!(
        db.scan(b"", usize::MAX).unwrap(),
        vec![(key(0), value(0, 0))]
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Crash after an arbitrary number of writes; nothing acknowledged may
    /// be lost (there is no un-acknowledged state in a single-threaded
    /// engine).
    #[test]
    fn no_acknowledged_write_is_lost(cut in 1usize..600, udc in any::<bool>()) {
        let storage: Arc<dyn StorageBackend> =
            MemStorage::new(SsdDevice::new(SsdConfig::default()));
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        {
            let db = open(&storage, udc);
            for i in 0..cut {
                let k = (i % 211) as u16;
                let v = (i / 211) as u16;
                db.put(&key(k), &value(k, v)).unwrap();
                model.insert(key(k), value(k, v));
            }
        } // crash
        let db = open(&storage, udc);
        let all = db.scan(b"", usize::MAX).unwrap();
        let want: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(a, b)| (a.clone(), b.clone())).collect();
        prop_assert_eq!(all, want);
    }
}
