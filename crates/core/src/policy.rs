//! The Lower-level Driven Compaction policy (paper §III, Algorithm 1).
//!
//! LDC splits the traditional compaction into two phases:
//!
//! * **link** — when a level overflows, the selected upper SSTable is not
//!   merged; it is *frozen* and its key range is sliced across the
//!   overlapping lower-level SSTables as metadata-only `SliceLink`s.
//! * **merge** — a lower-level SSTable that has accumulated at least `T_s`
//!   slice links (the *SliceLink threshold*) triggers the actual I/O: it is
//!   rewritten together with the linked slices, in place at its own level.
//!
//! Because the merge fires only once roughly a table's worth of upper-level
//! data has accumulated, each round of compaction rewrites O(1) lower-level
//! bytes per upper-level byte instead of O(k) — Theorems 3.1/2.1.
//!
//! Picking order:
//! 1. any file at or past the threshold → `LdcMerge` (most-linked first);
//! 2. otherwise, the most overfull level links one file down (`Link`), or
//!    trivially moves it if the next level is empty;
//! 3. liveness guard: if every candidate in the overfull level already
//!    carries slices (so it cannot be frozen), force-merge the most-linked
//!    file of that level even below the threshold.
//!
//! Level-0 files are always frozen **oldest first** — the engine's read
//! path relies on frozen L0 data being older than any active L0 file.

use ldc_lsm::compaction::{pick_overfull_level, CompactionPolicy, CompactionTask, PickContext};
use ldc_lsm::version::{FileMeta, Version};
use ldc_obs::{Event, EventKind, SharedSink};
use ldc_ssd::VirtualClock;

use crate::adaptive::AdaptiveThreshold;

/// Configuration for [`LdcPolicy`].
#[derive(Debug, Clone, PartialEq)]
pub struct LdcConfig {
    /// SliceLink threshold `T_s`; `None` derives it from the fan-out (the
    /// paper's best setting, §IV-F).
    pub slice_link_threshold: Option<usize>,
    /// Enable workload-driven self-adaptation of `T_s` (§III-B4).
    pub adaptive: bool,
    /// Window size (in observed ops) for the adaptive controller.
    pub adaptive_window: u64,
    /// Space-reclamation budget for the delayed garbage collection of
    /// frozen files (§III-D, §IV-J): when the *useless* frozen bytes
    /// (already-merged slices still pinned by their files' remaining live
    /// slices) exceed this fraction of the store, the policy spends idle
    /// background time merging the lower files that release the most
    /// frozen data. `1.0` disables reclamation.
    pub space_gc_ratio: f64,
}

impl Default for LdcConfig {
    fn default() -> Self {
        Self {
            slice_link_threshold: None,
            adaptive: false,
            adaptive_window: 10_000,
            space_gc_ratio: 0.25,
        }
    }
}

/// Lower-level driven compaction.
pub struct LdcPolicy {
    config: LdcConfig,
    adaptive: Option<AdaptiveThreshold>,
    /// Resolved threshold once the fan-out is known.
    resolved_threshold: Option<usize>,
    /// Sink + clock for `ThresholdAdapt` events; unset by default (no
    /// event is ever built then).
    trace: Option<(SharedSink, VirtualClock)>,
}

impl LdcPolicy {
    /// Creates the policy with explicit configuration.
    pub fn with_config(config: LdcConfig) -> Self {
        Self {
            adaptive: None,
            resolved_threshold: config.slice_link_threshold,
            config,
            trace: None,
        }
    }

    /// Routes `ThresholdAdapt` events (adaptive `T_s` changes) to `sink`,
    /// timestamped with `clock`.
    pub fn set_event_trace(&mut self, sink: SharedSink, clock: VirtualClock) {
        self.trace = if sink.enabled() {
            Some((sink, clock))
        } else {
            None
        };
    }

    /// Policy with the paper's default threshold (`T_s = fan-out`).
    pub fn new() -> Self {
        Self::with_config(LdcConfig::default())
    }

    /// Policy with a fixed threshold (Fig 12a/d sweeps).
    pub fn with_threshold(threshold: usize) -> Self {
        Self::with_config(LdcConfig {
            slice_link_threshold: Some(threshold),
            ..LdcConfig::default()
        })
    }

    /// Policy with the self-adaptive controller enabled.
    pub fn adaptive() -> Self {
        Self::with_config(LdcConfig {
            adaptive: true,
            ..LdcConfig::default()
        })
    }

    /// The currently effective SliceLink threshold (for introspection).
    pub fn current_threshold(&self, fan_out: u64) -> usize {
        if let Some(a) = &self.adaptive {
            return a.threshold();
        }
        self.resolved_threshold
            .unwrap_or_else(|| fan_out.max(1) as usize)
    }

    fn threshold(&mut self, ctx: &PickContext<'_>) -> usize {
        let fan_out = ctx.options.fan_out;
        if self.config.adaptive {
            let a = self.adaptive.get_or_insert_with(|| {
                AdaptiveThreshold::new(fan_out, self.config.adaptive_window)
            });
            return a.threshold();
        }
        *self
            .resolved_threshold
            .get_or_insert(fan_out.max(1) as usize)
    }
}

impl Default for LdcPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl CompactionPolicy for LdcPolicy {
    fn name(&self) -> &str {
        "ldc"
    }

    fn pick(&mut self, ctx: &PickContext<'_>) -> Option<CompactionTask> {
        let threshold = self.threshold(ctx);
        let version = ctx.version;

        // Relieve overfull levels first: links are metadata-only and keep
        // Level 0 from ever hitting the write gates (that cheapness is the
        // whole point of the link phase). Threshold-triggered merges run
        // right after, in the gaps.
        if let Some(task) = self.pick_for_overfull_level(ctx) {
            return Some(task);
        }

        // Merge any file that reached the SliceLink threshold (Algorithm 1,
        // lines 8-9). The byte trigger covers the case where slices are
        // whole files (young trees): the paper's condition is "accumulated
        // nearly the same amount of data as itself", for which the count
        // `T_s` is the steady-state proxy.
        let byte_threshold = (threshold as u64).saturating_mul(ctx.options.sstable_bytes as u64)
            / ctx.options.fan_out.max(1);
        if let Some((level, file)) = most_linked_file(version, threshold, byte_threshold) {
            return Some(CompactionTask::LdcMerge { level, file });
        }

        // Space reclamation (§III-D): frozen files whose slices are mostly
        // merged already still pin their full size. When that dead weight
        // exceeds the budget, spend idle time merging the lower file that
        // releases the most frozen bytes.
        self.pick_space_reclamation(ctx)
    }

    fn observe_op(&mut self, is_write: bool) {
        if let Some(a) = &mut self.adaptive {
            if let Some((old, new)) = a.observe(is_write) {
                if let Some((sink, clock)) = &self.trace {
                    // Instantaneous event; old/new thresholds ride in the
                    // input/output byte fields (see `Event` docs).
                    let now = clock.now();
                    sink.record(
                        Event::span(EventKind::ThresholdAdapt, now, now)
                            .bytes(old as u64, new as u64),
                    );
                }
            }
        }
    }
}

impl LdcPolicy {
    /// Link (or, when blocked, force-merge) one file out of the most
    /// overfull level, if any.
    fn pick_for_overfull_level(&mut self, ctx: &PickContext<'_>) -> Option<CompactionTask> {
        let version = ctx.version;
        let level = pick_overfull_level(version, ctx.options)?;
        let files = &version.levels[level];

        if version.levels[level + 1].is_empty() {
            // Nothing below to link against: move the pick down. Level 0
            // must move its oldest file to preserve read ordering, and a
            // file carrying slices cannot move (its slices' data belongs at
            // this level) — fall through to the force-merge guard instead.
            let file = if level == 0 {
                files.iter().find(|f| f.slices.is_empty()).map(|f| f.number)
            } else {
                round_robin_pick(files, &ctx.compact_pointers[level], |f| f.slices.is_empty())
            };
            if let Some(file) = file {
                return Some(CompactionTask::TrivialMove { level, file });
            }
        } else {
            // Link a slice-free file (a file with SliceLinks cannot be
            // chosen, §III-D). Level 0: oldest first (read-path contract).
            let linkable = if level == 0 {
                files.iter().find(|f| f.slices.is_empty()).map(|f| f.number)
            } else {
                round_robin_pick(files, &ctx.compact_pointers[level], |f| f.slices.is_empty())
            };
            if let Some(file) = linkable {
                return Some(CompactionTask::Link { level, file });
            }
        }

        // Phase 3 (liveness): every candidate carries slices; force-merge
        // the most-linked one so a slice-free file appears next round.
        let forced = files
            .iter()
            .max_by_key(|f| (f.slices.len(), std::cmp::Reverse(f.number)))?;
        Some(CompactionTask::LdcMerge {
            level,
            file: forced.number,
        })
    }

    /// Delayed GC of the frozen region: once the frozen region exceeds
    /// `space_gc_ratio` of the live level bytes, merge the lower file whose
    /// slices *expect* to release the most frozen bytes. A frozen source
    /// referenced by `r` files contributes `size / r` per merged reference,
    /// so repeated reclamation merges drain even widely shared sources.
    fn pick_space_reclamation(&self, ctx: &PickContext<'_>) -> Option<CompactionTask> {
        if self.config.space_gc_ratio >= 1.0 {
            return None;
        }
        let version = ctx.version;
        let frozen_bytes = version.frozen_bytes();
        if frozen_bytes == 0 {
            return None;
        }
        let level_bytes: u64 = (0..version.num_levels())
            .map(|l| version.level_bytes(l))
            .sum();
        if frozen_bytes <= (self.config.space_gc_ratio * level_bytes as f64) as u64 {
            return None;
        }
        let mut best: Option<(u64, usize, u64)> = None; // (score, level, file)
        for (level, files) in version.levels.iter().enumerate() {
            for f in files {
                if f.slices.is_empty() {
                    continue;
                }
                let score: u64 = f
                    .slices
                    .iter()
                    .filter_map(|s| {
                        let frozen = version.frozen.get(&s.source_file)?;
                        Some(frozen.size / u64::from(frozen.refcount.max(1)))
                    })
                    .sum();
                if score > 0 && best.is_none_or(|(b, _, _)| score > b) {
                    best = Some((score, level, f.number));
                }
            }
        }
        best.map(|(_, level, file)| CompactionTask::LdcMerge { level, file })
    }
}

/// The file with the most linked data at or past either trigger (slice
/// count or accumulated slice bytes), if any. Deeper levels win ties so
/// data keeps flowing toward the bottom.
fn most_linked_file(
    version: &Version,
    count_threshold: usize,
    byte_threshold: u64,
) -> Option<(usize, u64)> {
    let mut best: Option<(u64, usize, u64)> = None; // (bytes, level, file)
    for (level, files) in version.levels.iter().enumerate() {
        for f in files {
            let bytes = f.slice_bytes();
            if (f.slice_count() >= count_threshold || bytes >= byte_threshold)
                && best.is_none_or(|(bb, bl, _)| bytes > bb || (bytes == bb && level > bl))
            {
                best = Some((bytes, level, f.number));
            }
        }
    }
    best.map(|(_, level, file)| (level, file))
}

/// LevelDB-style round-robin: the first eligible file whose largest key is
/// past the cursor, wrapping to the first eligible file.
fn round_robin_pick(
    files: &[FileMeta],
    cursor: &[u8],
    eligible: impl Fn(&FileMeta) -> bool,
) -> Option<u64> {
    files
        .iter()
        .find(|f| eligible(f) && (cursor.is_empty() || f.largest_ukey() > cursor))
        .or_else(|| files.iter().find(|f| eligible(f)))
        .map(|f| f.number)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldc_lsm::types::{encode_internal_key, KeyRange, ValueType};
    use ldc_lsm::version::SliceLink;
    use ldc_lsm::Options;

    fn meta(number: u64, lo: &[u8], hi: &[u8], size: u64) -> FileMeta {
        FileMeta {
            number,
            size,
            smallest: encode_internal_key(lo, 1, ValueType::Value),
            largest: encode_internal_key(hi, 1, ValueType::Value),
            slices: Vec::new(),
        }
    }

    fn link(source: u64, seq: u64) -> SliceLink {
        SliceLink {
            source_file: source,
            range: KeyRange::all(),
            link_seq: seq,
            // Steady-state-sized slice: 1/k of a default SSTable, so count
            // and byte triggers coincide in tests.
            approx_bytes: (2 << 20) / 10,
        }
    }

    fn ctx<'a>(
        version: &'a Version,
        options: &'a Options,
        pointers: &'a [Vec<u8>],
    ) -> PickContext<'a> {
        PickContext {
            version,
            options,
            compact_pointers: pointers,
        }
    }

    #[test]
    fn threshold_defaults_to_fan_out() {
        let mut policy = LdcPolicy::new();
        let options = Options::default();
        let v = Version::new(4);
        let pointers = vec![Vec::new(); 4];
        let _ = policy.pick(&ctx(&v, &options, &pointers));
        assert_eq!(policy.current_threshold(options.fan_out), 10);
        let fixed = LdcPolicy::with_threshold(5);
        assert_eq!(fixed.current_threshold(10), 5);
    }

    #[test]
    fn overfull_l0_links_oldest_file() {
        let options = Options::default();
        let pointers = vec![Vec::new(); 4];
        let mut v = Version::new(4);
        for i in 1..=4 {
            v.levels[0].push(meta(i, b"a", b"z", 1000));
        }
        v.levels[1].push(meta(10, b"a", b"z", 1000));
        let mut policy = LdcPolicy::new();
        let task = policy.pick(&ctx(&v, &options, &pointers)).unwrap();
        assert_eq!(task, CompactionTask::Link { level: 0, file: 1 });
    }

    #[test]
    fn empty_lower_level_moves_instead_of_linking() {
        let options = Options::default();
        let pointers = vec![Vec::new(); 4];
        let mut v = Version::new(4);
        for i in 1..=4 {
            v.levels[0].push(meta(i, b"a", b"z", 1000));
        }
        let mut policy = LdcPolicy::new();
        let task = policy.pick(&ctx(&v, &options, &pointers)).unwrap();
        assert_eq!(task, CompactionTask::TrivialMove { level: 0, file: 1 });
    }

    #[test]
    fn threshold_reach_triggers_ldc_merge() {
        let options = Options::default();
        let pointers = vec![Vec::new(); 4];
        let mut v = Version::new(4);
        let mut f = meta(10, b"a", b"m", 1000);
        for i in 0..10 {
            f.slices.push(link(100 + i, i));
        }
        v.levels[1].push(f);
        let mut policy = LdcPolicy::new();
        let task = policy.pick(&ctx(&v, &options, &pointers)).unwrap();
        assert_eq!(task, CompactionTask::LdcMerge { level: 1, file: 10 });
    }

    #[test]
    fn overfull_level_relief_precedes_threshold_merges() {
        // Links are metadata-only, so draining an overfull L0 always comes
        // before threshold-triggered merges — that keeps writers away from
        // the L0 gates.
        let options = Options::default();
        let pointers = vec![Vec::new(); 4];
        let mut v = Version::new(4);
        let mut f = meta(10, b"a", b"m", 1000);
        for i in 0..10 {
            f.slices.push(link(100 + i, i));
        }
        v.levels[1].push(f);
        for i in 1..=4 {
            v.levels[0].push(meta(i, b"a", b"z", 1000));
        }
        let mut policy = LdcPolicy::new();
        let task = policy.pick(&ctx(&v, &options, &pointers)).unwrap();
        assert_eq!(task, CompactionTask::Link { level: 0, file: 1 });
    }

    #[test]
    fn below_threshold_does_not_merge() {
        let options = Options::default();
        let pointers = vec![Vec::new(); 4];
        let mut v = Version::new(4);
        let mut f = meta(10, b"a", b"m", 1000);
        for i in 0..9 {
            f.slices.push(link(100 + i, i));
        }
        v.levels[1].push(f);
        let mut policy = LdcPolicy::new();
        assert!(policy.pick(&ctx(&v, &options, &pointers)).is_none());
    }

    #[test]
    fn blocked_level_force_merges_most_linked_file() {
        let options = Options {
            l1_capacity_bytes: 1000,
            ..Options::default()
        }; // L1 overfull
        let pointers = vec![Vec::new(); 4];
        let mut v = Version::new(4);
        let mut f1 = meta(10, b"a", b"m", 2000);
        f1.slices.push(link(100, 0));
        let mut f2 = meta(11, b"n", b"z", 2000);
        f2.slices.push(link(101, 1));
        f2.slices.push(link(102, 2));
        v.levels[1].push(f1);
        v.levels[1].push(f2);
        v.levels[2].push(meta(20, b"a", b"z", 1000));
        let mut policy = LdcPolicy::new();
        // No slice-free file at L1 -> force LdcMerge of the most linked (11).
        let task = policy.pick(&ctx(&v, &options, &pointers)).unwrap();
        assert_eq!(task, CompactionTask::LdcMerge { level: 1, file: 11 });
    }

    #[test]
    fn deeper_level_round_robin_respects_cursor() {
        let options = Options {
            l1_capacity_bytes: 1000,
            ..Options::default()
        };
        let mut pointers = vec![Vec::new(); 4];
        pointers[1] = b"bb".to_vec();
        let mut v = Version::new(4);
        v.levels[1].push(meta(1, b"aa", b"bb", 2000));
        v.levels[1].push(meta(2, b"dd", b"ee", 2000));
        v.levels[2].push(meta(20, b"a", b"z", 1000));
        let mut policy = LdcPolicy::new();
        let task = policy.pick(&ctx(&v, &options, &pointers)).unwrap();
        assert_eq!(task, CompactionTask::Link { level: 1, file: 2 });
    }

    #[test]
    fn healthy_tree_picks_nothing() {
        let options = Options::default();
        let pointers = vec![Vec::new(); 4];
        let v = Version::new(4);
        let mut policy = LdcPolicy::new();
        assert!(policy.pick(&ctx(&v, &options, &pointers)).is_none());
    }
}
