//! Latency histogram with high-percentile queries.
//!
//! One implementation serves the whole workspace: `ldc-obs` owns the
//! log-linear layout (64 power-of-two magnitude bands × 32 linear
//! sub-buckets, <= ~3% relative error — like HDR histograms) and this
//! crate re-exports it under its historical name. Fig 8's P90–P99.99
//! series comes straight out of [`Histogram::percentile`], and the same
//! buckets back the engine's `MetricsRegistry`, so benchmark-side and
//! engine-side percentiles are always computed identically.

/// Latency histogram over u64 nanoseconds (the workspace-wide
/// implementation, re-exported from `ldc-obs`).
pub use ldc_obs::LatencyHistogram as Histogram;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_value() {
        let mut h = Histogram::new();
        h.record(1000);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 1000.0);
        assert_eq!(h.min(), 1000);
        assert_eq!(h.max(), 1000);
        let p = h.percentile(50.0);
        assert!((970..=1030).contains(&p), "p50 {p}");
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (p, expect) in [(50.0, 50_000u64), (90.0, 90_000), (99.0, 99_000)] {
            let got = h.percentile(p);
            let err = (got as f64 - expect as f64).abs() / expect as f64;
            assert!(err < 0.05, "p{p}: got {got}, expect ~{expect}");
        }
        assert_eq!(h.percentile(100.0), 100_000);
    }

    #[test]
    fn tail_is_captured() {
        // 999 fast ops and one slow outlier: with nearest-rank semantics the
        // outlier is the 1000th ordered sample, so p99.95 must surface it
        // while p90 stays clean.
        let mut h = Histogram::new();
        for _ in 0..999 {
            h.record(100);
        }
        h.record(1_000_000);
        let tail = h.percentile(99.95);
        assert!(tail > 900_000, "tail percentile missed the outlier: {tail}");
        let p90 = h.percentile(90.0);
        assert!(p90 <= 110, "p90 polluted by outlier: {p90}");
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn relative_error_is_bounded() {
        for magnitude in [5u64, 50, 500, 5_000, 50_000, 500_000, 5_000_000] {
            let mut h = Histogram::new();
            h.record(magnitude);
            let got = h.percentile(50.0);
            let err = (got as f64 - magnitude as f64).abs() / magnitude as f64;
            assert!(err <= 0.04, "value {magnitude}: got {got} (err {err})");
        }
    }

    #[test]
    fn empty_percentiles_are_zero_at_every_rank() {
        let h = Histogram::new();
        for p in [0.0, 0.1, 50.0, 99.99, 100.0] {
            assert_eq!(h.percentile(p), 0, "p{p} of empty");
        }
        assert_eq!(h.min(), 0, "empty min must not leak the u64::MAX sentinel");
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let mut h = Histogram::new();
        h.record(777);
        for p in [0.0, 50.0, 99.0, 100.0] {
            let got = h.percentile(p);
            assert!((750..=810).contains(&got), "p{p} = {got}");
        }
    }

    #[test]
    fn u64_max_is_recorded_without_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), u64::MAX);
        // p100 returns the exact max; interior percentiles stay clamped to
        // the observed range, and the u128 sum keeps the mean finite.
        assert_eq!(h.percentile(100.0), u64::MAX);
        let p99 = h.percentile(99.9);
        assert!((h.min()..=h.max()).contains(&p99), "p99.9 = {p99}");
        assert!(h.mean().is_finite() && h.mean() > 0.0);
    }

    #[test]
    fn zero_values_are_recorded() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 0);
    }
}
