//! Versions, version edits, and the manifest.
//!
//! A [`Version`] is the engine's view of which SSTables exist and where.
//! Beyond LevelDB's leveled layout, a version carries the two metadata
//! concepts the LDC mechanism introduces (paper §III):
//!
//! * the **frozen region** — SSTables removed from their level by a *link*
//!   operation; their live data is reachable only through slice links, and
//!   they are reclaimed when their reference count drops to zero, and
//! * **slice links** — per-lower-file records `(source frozen file, user-key
//!   range)` describing the portion of a frozen upper-level SSTable that
//!   will eventually merge into that lower file.
//!
//! Every mutation is expressed as a [`VersionEdit`], logged to the manifest
//! (same record format as the WAL) before being applied, so a reopened
//! database recovers the exact level/frozen/link state.

use std::collections::BTreeMap;
use std::sync::Arc;

use ldc_obs::{Event, EventKind, NoopSink, SharedSink};
use ldc_ssd::{IoClass, StorageBackend};

use crate::encoding::{get_length_prefixed, get_varint64, put_length_prefixed, put_varint64};
use crate::error::{corruption, Error, Result};
use crate::types::{user_key, KeyRange, SequenceNumber};
use crate::wal::{LogReader, LogWriter};

/// A slice link: the LDC paper's `SliceLink` (Algorithm 1, lines 4-7).
///
/// Attached to a *lower-level* file; points at the frozen `source_file`
/// whose entries within `range` logically belong to (and are newer than)
/// the lower file's data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceLink {
    /// Frozen upper-level file the slice reads from.
    pub source_file: u64,
    /// User-key range of the slice.
    pub range: KeyRange,
    /// Monotonic link counter; larger = linked later = newer data for any
    /// overlapping key.
    pub link_seq: u64,
    /// Estimated bytes the slice contributes (source size divided by the
    /// number of targets it was split across). The LDC merge trigger is
    /// really about accumulated *data* — "nearly the same amount of data as
    /// itself" (§III-A) — and the count threshold `T_s` is its proxy when
    /// slices are ~1/k of a file each.
    pub approx_bytes: u64,
}

/// Metadata for one live SSTable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// File number (names the `.sst` file).
    pub number: u64,
    /// File size in bytes.
    pub size: u64,
    /// Smallest internal key.
    pub smallest: Vec<u8>,
    /// Largest internal key.
    pub largest: Vec<u8>,
    /// Slice links attached to this file, in link order (oldest first).
    pub slices: Vec<SliceLink>,
}

impl FileMeta {
    /// Smallest user key.
    pub fn smallest_ukey(&self) -> &[u8] {
        user_key(&self.smallest)
    }

    /// Largest user key.
    pub fn largest_ukey(&self) -> &[u8] {
        user_key(&self.largest)
    }

    /// Whether the file's user-key span overlaps `[lo, hi]` (closed).
    pub fn overlaps_ukeys(&self, lo: &[u8], hi: &[u8]) -> bool {
        self.smallest_ukey() <= hi && self.largest_ukey() >= lo
    }

    /// Slices covering `ukey`, newest link first (read-path priority).
    pub fn slices_covering<'a>(&'a self, ukey: &'a [u8]) -> impl Iterator<Item = &'a SliceLink> {
        self.slices
            .iter()
            .rev()
            .filter(move |s| s.range.contains(ukey))
    }

    /// Number of attached slice links (the paper's merge trigger counter).
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Estimated bytes of linked upper-level data awaiting merge.
    pub fn slice_bytes(&self) -> u64 {
        self.slices.iter().map(|s| s.approx_bytes).sum()
    }
}

/// Metadata for a frozen SSTable (paper: "frozen region").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrozenMeta {
    /// File number.
    pub number: u64,
    /// File size in bytes.
    pub size: u64,
    /// Smallest internal key.
    pub smallest: Vec<u8>,
    /// Largest internal key.
    pub largest: Vec<u8>,
    /// Live slice links referencing this file (Algorithm 1's
    /// `s_u.reference`). Recomputed from links on recovery.
    pub refcount: u32,
}

/// The level/frozen/link state of the store at one instant.
#[derive(Debug, Clone, Default)]
pub struct Version {
    /// `levels[0]` may have overlapping files ordered by file number
    /// (newest last); deeper levels are sorted by smallest key and disjoint.
    pub levels: Vec<Vec<FileMeta>>,
    /// Frozen files by number.
    pub frozen: BTreeMap<u64, FrozenMeta>,
}

impl Version {
    /// Empty version with `max_levels` levels.
    pub fn new(max_levels: usize) -> Self {
        Self {
            levels: vec![Vec::new(); max_levels],
            frozen: BTreeMap::new(),
        }
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Total bytes of live files in `level`.
    pub fn level_bytes(&self, level: usize) -> u64 {
        self.levels
            .get(level)
            .map(|files| files.iter().map(|f| f.size).sum())
            .unwrap_or(0)
    }

    /// Number of files in `level`.
    pub fn level_files(&self, level: usize) -> usize {
        self.levels.get(level).map(Vec::len).unwrap_or(0)
    }

    /// Total bytes held by frozen files (the LDC space overhead, Fig 15).
    pub fn frozen_bytes(&self) -> u64 {
        self.frozen.values().map(|f| f.size).sum()
    }

    /// Count of frozen files.
    pub fn frozen_files(&self) -> usize {
        self.frozen.len()
    }

    /// Finds a file by number, returning its level.
    pub fn find_file(&self, number: u64) -> Option<(usize, &FileMeta)> {
        for (level, files) in self.levels.iter().enumerate() {
            if let Some(f) = files.iter().find(|f| f.number == number) {
                return Some((level, f));
            }
        }
        None
    }

    /// Files in `level` overlapping the closed user-key span `[lo, hi]`.
    pub fn overlapping_files(&self, level: usize, lo: &[u8], hi: &[u8]) -> Vec<&FileMeta> {
        self.levels
            .get(level)
            .into_iter()
            .flatten()
            .filter(|f| f.overlaps_ukeys(lo, hi))
            .collect()
    }

    /// Total number of live slice links across all files.
    pub fn total_slice_links(&self) -> usize {
        self.levels
            .iter()
            .flat_map(|files| files.iter())
            .map(|f| f.slices.len())
            .sum()
    }

    /// Internal consistency checks, used by tests and debug builds:
    /// deeper levels sorted/disjoint, refcounts match live links, and every
    /// link's source exists in the frozen set.
    pub fn check_invariants(&self) -> Result<()> {
        for (level, files) in self.levels.iter().enumerate().skip(1) {
            for pair in files.windows(2) {
                if let [a, b] = pair {
                    if a.largest_ukey() >= b.smallest_ukey() {
                        return Err(Error::InvalidState(format!(
                            "level {level} files {} and {} overlap",
                            a.number, b.number
                        )));
                    }
                }
            }
        }
        let mut refs: BTreeMap<u64, u32> = BTreeMap::new();
        for files in &self.levels {
            for f in files {
                for s in &f.slices {
                    *refs.entry(s.source_file).or_default() += 1;
                    if !self.frozen.contains_key(&s.source_file) {
                        return Err(Error::InvalidState(format!(
                            "slice on file {} references missing frozen file {}",
                            f.number, s.source_file
                        )));
                    }
                }
            }
        }
        for (number, frozen) in &self.frozen {
            let expected = refs.get(number).copied().unwrap_or(0);
            if frozen.refcount != expected {
                return Err(Error::InvalidState(format!(
                    "frozen {number} refcount {} != live links {expected}",
                    frozen.refcount
                )));
            }
        }
        Ok(())
    }
}

/// A logged, atomic change to the version state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VersionEdit {
    /// New WAL number after a memtable rotation.
    pub log_number: Option<u64>,
    /// High-water file number.
    pub next_file_number: Option<u64>,
    /// High-water sequence number.
    pub last_sequence: Option<SequenceNumber>,
    /// Per-level round-robin compaction cursors (level, user key).
    pub compact_pointers: Vec<(u32, Vec<u8>)>,
    /// Files removed from a level: (level, number).
    pub deleted_files: Vec<(u32, u64)>,
    /// Files added to a level.
    pub new_files: Vec<(u32, FileMeta)>,
    /// Files moved from a level into the frozen region: (level, number).
    pub frozen_files: Vec<(u32, u64)>,
    /// New slice links: (target file number, link).
    pub new_links: Vec<(u64, SliceLink)>,
    /// Frozen files fully consumed and deleted.
    pub deleted_frozen: Vec<u64>,
    /// Replication stream position: how many backup-stream records this
    /// store has applied (follower-side bookkeeping; never set by the
    /// primary's own edits). Persisted so a restarted follower resumes
    /// the stream where it left off instead of re-applying history.
    pub replication_cursor: Option<u64>,
}

const TAG_LOG_NUMBER: u64 = 1;
const TAG_NEXT_FILE: u64 = 2;
const TAG_LAST_SEQ: u64 = 3;
const TAG_COMPACT_POINTER: u64 = 4;
const TAG_DELETED_FILE: u64 = 5;
const TAG_NEW_FILE: u64 = 6;
const TAG_FROZEN_FILE: u64 = 7;
const TAG_NEW_LINK: u64 = 8;
const TAG_DELETED_FROZEN: u64 = 9;
const TAG_REPLICATION_CURSOR: u64 = 10;

impl VersionEdit {
    /// Serializes to a manifest record payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        if let Some(v) = self.log_number {
            put_varint64(&mut out, TAG_LOG_NUMBER);
            put_varint64(&mut out, v);
        }
        if let Some(v) = self.next_file_number {
            put_varint64(&mut out, TAG_NEXT_FILE);
            put_varint64(&mut out, v);
        }
        if let Some(v) = self.last_sequence {
            put_varint64(&mut out, TAG_LAST_SEQ);
            put_varint64(&mut out, v);
        }
        for (level, key) in &self.compact_pointers {
            put_varint64(&mut out, TAG_COMPACT_POINTER);
            put_varint64(&mut out, u64::from(*level));
            put_length_prefixed(&mut out, key);
        }
        for (level, number) in &self.deleted_files {
            put_varint64(&mut out, TAG_DELETED_FILE);
            put_varint64(&mut out, u64::from(*level));
            put_varint64(&mut out, *number);
        }
        for (level, meta) in &self.new_files {
            put_varint64(&mut out, TAG_NEW_FILE);
            put_varint64(&mut out, u64::from(*level));
            put_varint64(&mut out, meta.number);
            put_varint64(&mut out, meta.size);
            put_length_prefixed(&mut out, &meta.smallest);
            put_length_prefixed(&mut out, &meta.largest);
        }
        for (level, number) in &self.frozen_files {
            put_varint64(&mut out, TAG_FROZEN_FILE);
            put_varint64(&mut out, u64::from(*level));
            put_varint64(&mut out, *number);
        }
        for (target, link) in &self.new_links {
            put_varint64(&mut out, TAG_NEW_LINK);
            put_varint64(&mut out, *target);
            put_varint64(&mut out, link.source_file);
            put_varint64(&mut out, link.link_seq);
            put_varint64(&mut out, link.approx_bytes);
            put_length_prefixed(&mut out, &link.range.lo);
            match &link.range.hi {
                Some(hi) => {
                    put_varint64(&mut out, 1);
                    put_length_prefixed(&mut out, hi);
                }
                None => put_varint64(&mut out, 0),
            }
        }
        for number in &self.deleted_frozen {
            put_varint64(&mut out, TAG_DELETED_FROZEN);
            put_varint64(&mut out, *number);
        }
        if let Some(v) = self.replication_cursor {
            put_varint64(&mut out, TAG_REPLICATION_CURSOR);
            put_varint64(&mut out, v);
        }
        out
    }

    /// Parses a manifest record payload.
    pub fn decode(mut data: &[u8]) -> Result<VersionEdit> {
        let mut edit = VersionEdit::default();
        fn varint(data: &mut &[u8]) -> Result<u64> {
            let (v, n) = get_varint64(data).ok_or_else(|| corruption("edit varint"))?;
            *data = data.get(n..).unwrap_or_default();
            Ok(v)
        }
        fn bytes(data: &mut &[u8]) -> Result<Vec<u8>> {
            let (s, n) = get_length_prefixed(data).ok_or_else(|| corruption("edit bytes"))?;
            let out = s.to_vec();
            *data = data.get(n..).unwrap_or_default();
            Ok(out)
        }
        while !data.is_empty() {
            let tag = varint(&mut data)?;
            match tag {
                TAG_LOG_NUMBER => edit.log_number = Some(varint(&mut data)?),
                TAG_NEXT_FILE => edit.next_file_number = Some(varint(&mut data)?),
                TAG_LAST_SEQ => edit.last_sequence = Some(varint(&mut data)?),
                TAG_COMPACT_POINTER => {
                    let level = varint(&mut data)? as u32;
                    let key = bytes(&mut data)?;
                    edit.compact_pointers.push((level, key));
                }
                TAG_DELETED_FILE => {
                    let level = varint(&mut data)? as u32;
                    let number = varint(&mut data)?;
                    edit.deleted_files.push((level, number));
                }
                TAG_NEW_FILE => {
                    let level = varint(&mut data)? as u32;
                    let number = varint(&mut data)?;
                    let size = varint(&mut data)?;
                    let smallest = bytes(&mut data)?;
                    let largest = bytes(&mut data)?;
                    edit.new_files.push((
                        level,
                        FileMeta {
                            number,
                            size,
                            smallest,
                            largest,
                            slices: Vec::new(),
                        },
                    ));
                }
                TAG_FROZEN_FILE => {
                    let level = varint(&mut data)? as u32;
                    let number = varint(&mut data)?;
                    edit.frozen_files.push((level, number));
                }
                TAG_NEW_LINK => {
                    let target = varint(&mut data)?;
                    let source_file = varint(&mut data)?;
                    let link_seq = varint(&mut data)?;
                    let approx_bytes = varint(&mut data)?;
                    let lo = bytes(&mut data)?;
                    let has_hi = varint(&mut data)?;
                    let hi = if has_hi == 1 {
                        Some(bytes(&mut data)?)
                    } else {
                        None
                    };
                    edit.new_links.push((
                        target,
                        SliceLink {
                            source_file,
                            range: KeyRange { lo, hi },
                            link_seq,
                            approx_bytes,
                        },
                    ));
                }
                TAG_DELETED_FROZEN => edit.deleted_frozen.push(varint(&mut data)?),
                TAG_REPLICATION_CURSOR => edit.replication_cursor = Some(varint(&mut data)?),
                t => return Err(corruption(format!("unknown edit tag {t}"))),
            }
        }
        Ok(edit)
    }
}

/// Owns the current [`Version`], the manifest log, and the counters that
/// survive restarts.
pub struct VersionSet {
    storage: Arc<dyn StorageBackend>,
    manifest: LogWriter,
    /// Live state, shared with in-flight read views. `log_and_apply`
    /// never mutates a published version in place: it clones, applies the
    /// edit, and swaps the `Arc`, so readers that pinned the old version
    /// keep an immutable, consistent file listing (LevelDB's version-set
    /// MVCC, minus the manual refcounting).
    pub current: Arc<Version>,
    /// Next file number to hand out.
    pub next_file_number: u64,
    /// Highest committed sequence number.
    pub last_sequence: SequenceNumber,
    /// WAL file number currently in use.
    pub log_number: u64,
    /// Per-level round-robin cursors (largest user key compacted so far).
    pub compact_pointers: Vec<Vec<u8>>,
    /// Monotonic counter stamping slice links.
    pub link_counter: u64,
    /// Approximate bytes appended to the current manifest; when this
    /// exceeds [`MANIFEST_ROLLOVER_BYTES`] the manifest is rolled into a
    /// fresh snapshot so recovery time stays bounded.
    manifest_bytes: u64,
    /// Torn-tail bytes discarded from the manifest during the last
    /// [`VersionSet::recover`] (zero for a fresh set or a clean manifest).
    pub recovered_manifest_tail_bytes: u64,
    /// Backup-stream records applied so far (follower-side; stays 0 on a
    /// primary). Persisted with every applied record and in snapshot
    /// manifests so a restarted follower resumes, not replays.
    pub replication_cursor: u64,
    /// When armed, every applied edit is also shipped into an incremental
    /// backup stream (see [`Shipper`]).
    shipper: Option<Shipper>,
}

/// Manifest size that triggers a rollover to a fresh snapshot manifest.
pub const MANIFEST_ROLLOVER_BYTES: u64 = 1 << 20;

/// Name of the manifest pointer file.
pub const CURRENT_FILE: &str = "CURRENT";

/// Formats a table file name.
pub fn table_file_name(number: u64) -> String {
    format!("{number:06}.sst")
}

/// Formats a WAL file name.
pub fn log_file_name(number: u64) -> String {
    format!("{number:06}.log")
}

/// Formats a manifest file name.
pub fn manifest_file_name(number: u64) -> String {
    format!("MANIFEST-{number:06}")
}

impl VersionSet {
    /// Creates a brand-new version set (fresh database) with an initial
    /// manifest.
    pub fn create(storage: Arc<dyn StorageBackend>, max_levels: usize) -> Result<VersionSet> {
        let manifest_number = 1;
        let manifest_name = manifest_file_name(manifest_number);
        // A crash during a previous create (before CURRENT became durable)
        // can leave a torn manifest at this name; appending after its
        // garbage would wreck the log framing, so start from scratch.
        if storage.exists(&manifest_name) {
            storage.delete(&manifest_name)?;
        }
        let mut manifest = LogWriter::new(
            Arc::clone(&storage),
            manifest_name.clone(),
            IoClass::ManifestWrite,
        );
        // First record fixes the counters.
        let edit = VersionEdit {
            next_file_number: Some(2),
            last_sequence: Some(0),
            log_number: Some(0),
            ..Default::default()
        };
        manifest.add_record(&edit.encode())?;
        manifest.sync()?;
        storage.write_file(
            CURRENT_FILE,
            manifest_name.as_bytes(),
            IoClass::ManifestWrite,
        )?;
        Ok(VersionSet {
            storage,
            manifest,
            current: Arc::new(Version::new(max_levels)),
            next_file_number: 2,
            last_sequence: 0,
            log_number: 0,
            compact_pointers: vec![Vec::new(); max_levels],
            link_counter: 0,
            manifest_bytes: 0,
            recovered_manifest_tail_bytes: 0,
            replication_cursor: 0,
            shipper: None,
        })
    }

    /// Recovers the version set from an existing `CURRENT` + manifest.
    pub fn recover(storage: Arc<dyn StorageBackend>, max_levels: usize) -> Result<VersionSet> {
        let manifest_name =
            String::from_utf8(storage.read_all(CURRENT_FILE, IoClass::Other)?.to_vec())
                .map_err(|_| corruption("CURRENT is not utf-8"))?;
        let mut version = Version::new(max_levels);
        let mut next_file_number = 2;
        let mut last_sequence = 0;
        let mut log_number = 0;
        let mut compact_pointers = vec![Vec::new(); max_levels];
        let mut link_counter = 0;
        let mut replication_cursor = 0;
        let mut reader = LogReader::open(storage.as_ref(), &manifest_name)?;
        reader.for_each(|record| {
            let edit = VersionEdit::decode(record)?;
            if let Some(v) = edit.next_file_number {
                next_file_number = v;
            }
            if let Some(v) = edit.last_sequence {
                last_sequence = v;
            }
            if let Some(v) = edit.log_number {
                log_number = v;
            }
            for (level, key) in &edit.compact_pointers {
                if let Some(slot) = compact_pointers.get_mut(*level as usize) {
                    *slot = key.clone();
                }
            }
            for (_, link) in &edit.new_links {
                link_counter = link_counter.max(link.link_seq + 1);
            }
            if let Some(v) = edit.replication_cursor {
                replication_cursor = v;
            }
            apply_edit(&mut version, &edit)
        })?;
        // A crash mid-`log_and_apply` leaves a torn final edit; the reader
        // stops at the clean prefix, which is exactly the last committed
        // version. Report the discarded bytes for the recovery summary.
        let manifest_tail_bytes = reader.truncated_tail_bytes();
        recompute_refcounts(&mut version);
        version.check_invariants()?;
        let manifest = LogWriter::new(Arc::clone(&storage), manifest_name, IoClass::ManifestWrite);
        // Re-appending to the recovered manifest would corrupt record
        // framing mid-block, so start a fresh manifest with a snapshot.
        let mut vs = VersionSet {
            storage,
            manifest,
            current: Arc::new(version),
            next_file_number,
            last_sequence,
            log_number,
            compact_pointers,
            link_counter,
            manifest_bytes: 0,
            recovered_manifest_tail_bytes: manifest_tail_bytes,
            replication_cursor,
            shipper: None,
        };
        vs.write_snapshot_manifest()?;
        Ok(vs)
    }

    /// Whether a database already exists in `storage`.
    pub fn exists(storage: &dyn StorageBackend) -> bool {
        storage.exists(CURRENT_FILE)
    }

    /// Builds a fresh version set around an externally reconstructed
    /// `version` — the final step of `repair_db`. Recomputes frozen
    /// refcounts, checks invariants, then writes a brand-new snapshot
    /// manifest and points `CURRENT` at it; nothing from any previous
    /// manifest is reused.
    pub fn rebuild(
        storage: Arc<dyn StorageBackend>,
        mut version: Version,
        last_sequence: SequenceNumber,
        next_file_number: u64,
    ) -> Result<VersionSet> {
        recompute_refcounts(&mut version);
        version.check_invariants()?;
        let link_counter = version
            .levels
            .iter()
            .flat_map(|files| files.iter())
            .flat_map(|f| f.slices.iter())
            .map(|s| s.link_seq + 1)
            .max()
            .unwrap_or(0);
        let max_levels = version.num_levels();
        // Placeholder writer (never appended to): `write_snapshot_manifest`
        // installs the real manifest before returning.
        let manifest = LogWriter::new(
            Arc::clone(&storage),
            manifest_file_name(0),
            IoClass::ManifestWrite,
        );
        let mut vs = VersionSet {
            storage,
            manifest,
            current: Arc::new(version),
            next_file_number: next_file_number.max(2),
            last_sequence,
            log_number: 0,
            compact_pointers: vec![Vec::new(); max_levels],
            link_counter,
            manifest_bytes: 0,
            recovered_manifest_tail_bytes: 0,
            replication_cursor: 0,
            shipper: None,
        };
        vs.write_snapshot_manifest()?;
        Ok(vs)
    }

    /// Allocates a fresh file number.
    pub fn new_file_number(&mut self) -> u64 {
        let n = self.next_file_number;
        self.next_file_number += 1;
        n
    }

    /// Allocates a fresh link sequence.
    pub fn new_link_seq(&mut self) -> u64 {
        let n = self.link_counter;
        self.link_counter += 1;
        n
    }

    /// Logs `edit` to the manifest, then applies it to the current version.
    pub fn log_and_apply(&mut self, mut edit: VersionEdit) -> Result<()> {
        edit.next_file_number = Some(self.next_file_number);
        edit.last_sequence = Some(self.last_sequence);
        for (level, key) in &edit.compact_pointers {
            if let Some(slot) = self.compact_pointers.get_mut(*level as usize) {
                *slot = key.clone();
            }
        }
        let record = edit.encode();
        self.manifest.add_record(&record)?;
        self.manifest.sync()?;
        self.manifest_bytes += record.len() as u64;
        if let Some(v) = edit.log_number {
            self.log_number = v;
        }
        // Copy-on-write publish: readers holding the old `Arc<Version>`
        // keep a stable view while the new version becomes current.
        let mut next = Version::clone(&self.current);
        apply_edit(&mut next, &edit)?;
        recompute_refcounts(&mut next);
        debug_assert!(next.check_invariants().is_ok());
        self.current = Arc::new(next);
        // Ship after the local manifest sync + publish: the edit is already
        // committed locally, so the backup stream never runs ahead of the
        // primary. A ship failure propagates (the caller latches bg_error)
        // because silently diverging from the stream would hand a follower
        // an undetectably stale history.
        if let Some(shipper) = &mut self.shipper {
            shipper.ship(&edit)?;
        }
        if self.manifest_bytes > MANIFEST_ROLLOVER_BYTES {
            let old = self.manifest.name().to_string();
            self.write_snapshot_manifest()?;
            if self.storage.exists(&old) {
                self.storage.delete(&old)?;
            }
        }
        Ok(())
    }

    /// Applies an edit received from a primary's backup stream: adopts the
    /// primary's counters instead of stamping our own, logs the record to
    /// our manifest (with the advanced replication cursor, so a restart
    /// resumes the stream instead of replaying it), and publishes the new
    /// version. The caller has already materialized any SSTables the edit
    /// references.
    pub fn apply_remote_edit(&mut self, edit: &VersionEdit) -> Result<()> {
        // Counters travel inside the shipped edit (`log_and_apply` stamps
        // them on the primary). Adopt by max: the follower allocates its
        // own numbers for its WAL and manifest rollovers, which may run
        // ahead of the primary's high-water mark.
        if let Some(v) = edit.next_file_number {
            self.next_file_number = self.next_file_number.max(v);
        }
        if let Some(v) = edit.last_sequence {
            self.last_sequence = self.last_sequence.max(v);
        }
        if let Some(v) = edit.log_number {
            self.log_number = self.log_number.max(v);
        }
        for (level, key) in &edit.compact_pointers {
            if let Some(slot) = self.compact_pointers.get_mut(*level as usize) {
                *slot = key.clone();
            }
        }
        for (_, link) in &edit.new_links {
            self.link_counter = self.link_counter.max(link.link_seq + 1);
        }
        self.replication_cursor += 1;
        let mut record_edit = edit.clone();
        record_edit.replication_cursor = Some(self.replication_cursor);
        let record = record_edit.encode();
        self.manifest.add_record(&record)?;
        self.manifest.sync()?;
        self.manifest_bytes += record.len() as u64;
        let mut next = Version::clone(&self.current);
        apply_edit(&mut next, edit)?;
        recompute_refcounts(&mut next);
        debug_assert!(next.check_invariants().is_ok());
        self.current = Arc::new(next);
        if self.manifest_bytes > MANIFEST_ROLLOVER_BYTES {
            let old = self.manifest.name().to_string();
            self.write_snapshot_manifest()?;
            if self.storage.exists(&old) {
                self.storage.delete(&old)?;
            }
        }
        Ok(())
    }

    /// Arms incremental shipping: every subsequent `log_and_apply` also
    /// appends its edit to `shipper`'s stream. Call with the version-set
    /// lock held so no edit slips between the base checkpoint and record 1.
    pub fn arm_shipper(&mut self, shipper: Shipper) {
        self.shipper = Some(shipper);
    }

    /// Disarms incremental shipping, returning the shipper's final stats.
    pub fn disarm_shipper(&mut self) -> Option<Shipper> {
        self.shipper.take()
    }

    /// Whether a backup stream is currently armed.
    pub fn shipping(&self) -> bool {
        self.shipper.is_some()
    }

    /// Stream stats of the armed shipper: (edits, files, bytes shipped).
    pub fn shipper_stats(&self) -> Option<(u64, u64, u64)> {
        self.shipper
            .as_ref()
            .map(|s| (s.edits_shipped, s.files_shipped, s.bytes_shipped))
    }

    /// Rolls the manifest: writes a new manifest containing one snapshot
    /// edit of the entire current state, then points `CURRENT` at it.
    fn write_snapshot_manifest(&mut self) -> Result<()> {
        let manifest_number = self.new_file_number();
        let name = manifest_file_name(manifest_number);
        // A crashed incarnation may have left a torn, unreferenced manifest
        // at a number this incarnation re-allocates (the edit consuming the
        // number never became durable). Appending after its garbage would
        // wreck the log framing, so start from scratch.
        if self.storage.exists(&name) {
            self.storage.delete(&name)?;
        }
        let mut writer = LogWriter::new(
            Arc::clone(&self.storage),
            name.clone(),
            IoClass::ManifestWrite,
        );
        let edit = snapshot_edit(
            &self.current,
            self.next_file_number,
            self.last_sequence,
            self.log_number,
            &self.compact_pointers,
            self.replication_cursor,
        );
        writer.add_record(&edit.encode())?;
        writer.sync()?;
        self.storage
            .write_file(CURRENT_FILE, name.as_bytes(), IoClass::ManifestWrite)?;
        self.manifest = writer;
        self.manifest_bytes = 0;
        Ok(())
    }
}

/// Builds the single [`VersionEdit`] that reproduces `version` and the
/// given counters from an empty state — the payload of every snapshot
/// manifest, and of a checkpoint's synthesized manifest.
pub fn snapshot_edit(
    version: &Version,
    next_file_number: u64,
    last_sequence: SequenceNumber,
    log_number: u64,
    compact_pointers: &[Vec<u8>],
    replication_cursor: u64,
) -> VersionEdit {
    let mut edit = VersionEdit {
        next_file_number: Some(next_file_number),
        last_sequence: Some(last_sequence),
        log_number: Some(log_number),
        replication_cursor: (replication_cursor > 0).then_some(replication_cursor),
        ..Default::default()
    };
    for (level, key) in compact_pointers.iter().enumerate() {
        if !key.is_empty() {
            edit.compact_pointers.push((level as u32, key.clone()));
        }
    }
    for (level, files) in version.levels.iter().enumerate() {
        for f in files {
            let mut meta = f.clone();
            let slices = std::mem::take(&mut meta.slices);
            edit.new_files.push((level as u32, meta));
            for link in slices {
                edit.new_links.push((f.number, link));
            }
        }
    }
    // Frozen files are re-created as snapshot adds to a pseudo level,
    // then frozen; simplest encoding: add to their original level 0 and
    // freeze immediately (level choice is irrelevant once frozen).
    for frozen in version.frozen.values() {
        edit.new_files.push((
            0,
            FileMeta {
                number: frozen.number,
                size: frozen.size,
                smallest: frozen.smallest.clone(),
                largest: frozen.largest.clone(),
                slices: Vec::new(),
            },
        ));
        edit.frozen_files.push((0, frozen.number));
    }
    // Keep link/new_file ordering valid: links must come after both the
    // freeze of their source and the add of their target, which holds
    // because apply_edit processes adds, then freezes, then links.
    edit
}

/// Appends applied [`VersionEdit`]s to an incremental backup stream:
/// `<prefix>EDITS`, CRC-framed exactly like the WAL, preceded for each
/// record by links of any referenced new SSTables into the backup prefix.
/// Link-before-append means a durable stream record never references a
/// file the backup is missing; a crash between the two leaves an orphan
/// link that restore simply ignores.
pub struct Shipper {
    storage: Arc<dyn StorageBackend>,
    prefix: String,
    writer: LogWriter,
    /// Where per-record [`EventKind::BackupShip`] events go.
    sink: SharedSink,
    /// Stream records appended (and synced) so far.
    pub edits_shipped: u64,
    /// SSTables linked into the backup prefix so far.
    pub files_shipped: u64,
    /// Total bytes of those SSTables.
    pub bytes_shipped: u64,
}

impl std::fmt::Debug for Shipper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shipper")
            .field("prefix", &self.prefix)
            .field("edits_shipped", &self.edits_shipped)
            .finish_non_exhaustive()
    }
}

/// Name of the edit-stream file inside a backup prefix.
pub const STREAM_FILE: &str = "EDITS";

impl Shipper {
    /// Opens (or continues) the stream at `<prefix>EDITS` on `storage`.
    pub fn new(storage: Arc<dyn StorageBackend>, prefix: String) -> Shipper {
        let writer = LogWriter::new(
            Arc::clone(&storage),
            format!("{prefix}{STREAM_FILE}"),
            IoClass::ManifestWrite,
        );
        Shipper {
            storage,
            prefix,
            writer,
            sink: Arc::new(NoopSink),
            edits_shipped: 0,
            files_shipped: 0,
            bytes_shipped: 0,
        }
    }

    /// Routes per-record ship events to `sink`.
    pub fn with_sink(mut self, sink: SharedSink) -> Shipper {
        self.sink = sink;
        self
    }

    /// The backup prefix this shipper writes under.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Ships one applied edit: links its new SSTables into the backup
    /// prefix, then appends + syncs the encoded edit as one stream record.
    pub fn ship(&mut self, edit: &VersionEdit) -> Result<()> {
        let t0 = self.storage.device().clock().now();
        let mut record_files = 0u64;
        let mut record_bytes = 0u64;
        for (_, meta) in &edit.new_files {
            let src = table_file_name(meta.number);
            let dst = format!("{}{src}", self.prefix);
            // Trivial moves re-add a file the base checkpoint (or an
            // earlier record) already shipped.
            if self.storage.exists(&dst) {
                continue;
            }
            self.storage.link_file(&src, &dst, IoClass::Other)?;
            record_files += 1;
            record_bytes += meta.size;
        }
        self.writer.add_record(&edit.encode())?;
        self.writer.sync()?;
        self.files_shipped += record_files;
        self.bytes_shipped += record_bytes;
        self.edits_shipped += 1;
        if self.sink.enabled() {
            self.sink.record(
                Event::span(
                    EventKind::BackupShip,
                    t0,
                    self.storage.device().clock().now(),
                )
                .files(record_files as u32, 0)
                .bytes(record_bytes, 0),
            );
        }
        Ok(())
    }
}

/// Applies one edit to `version`. Processing order: deletes, adds, freezes,
/// links, frozen deletes.
fn apply_edit(version: &mut Version, edit: &VersionEdit) -> Result<()> {
    for (level, number) in &edit.deleted_files {
        let files = version
            .levels
            .get_mut(*level as usize)
            .ok_or_else(|| corruption("delete: bad level"))?;
        let before = files.len();
        files.retain(|f| f.number != *number);
        if files.len() == before {
            return Err(Error::InvalidState(format!(
                "delete of absent file {number} at level {level}"
            )));
        }
    }
    for (level, meta) in &edit.new_files {
        let files = version
            .levels
            .get_mut(*level as usize)
            .ok_or_else(|| corruption("add: bad level"))?;
        files.push(meta.clone());
        if *level == 0 {
            files.sort_by_key(|f| f.number);
        } else {
            files.sort_by(|a, b| a.smallest.cmp(&b.smallest));
        }
    }
    for (level, number) in &edit.frozen_files {
        let files = version
            .levels
            .get_mut(*level as usize)
            .ok_or_else(|| corruption("freeze: bad level"))?;
        let idx = files
            .iter()
            .position(|f| f.number == *number)
            .ok_or_else(|| Error::InvalidState(format!("freeze of absent file {number}")))?;
        let meta = files.remove(idx);
        if !meta.slices.is_empty() {
            return Err(Error::InvalidState(format!(
                "freezing file {number} that still has slice links"
            )));
        }
        version.frozen.insert(
            meta.number,
            FrozenMeta {
                number: meta.number,
                size: meta.size,
                smallest: meta.smallest,
                largest: meta.largest,
                refcount: 0,
            },
        );
    }
    for (target, link) in &edit.new_links {
        let mut found = false;
        for files in version.levels.iter_mut() {
            if let Some(f) = files.iter_mut().find(|f| f.number == *target) {
                f.slices.push(link.clone());
                found = true;
                break;
            }
        }
        if !found {
            return Err(Error::InvalidState(format!(
                "link targets absent file {target}"
            )));
        }
        if !version.frozen.contains_key(&link.source_file) {
            return Err(Error::InvalidState(format!(
                "link source {} is not frozen",
                link.source_file
            )));
        }
    }
    for number in &edit.deleted_frozen {
        if version.frozen.remove(number).is_none() {
            return Err(Error::InvalidState(format!(
                "delete of absent frozen file {number}"
            )));
        }
    }
    Ok(())
}

/// Recomputes frozen-file refcounts from live slice links.
fn recompute_refcounts(version: &mut Version) {
    for frozen in version.frozen.values_mut() {
        frozen.refcount = 0;
    }
    let mut counts: BTreeMap<u64, u32> = BTreeMap::new();
    for files in &version.levels {
        for f in files {
            for s in &f.slices {
                *counts.entry(s.source_file).or_default() += 1;
            }
        }
    }
    for (number, count) in counts {
        if let Some(frozen) = version.frozen.get_mut(&number) {
            frozen.refcount = count;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{encode_internal_key, ValueType};
    use ldc_ssd::{MemStorage, SsdConfig, SsdDevice};

    fn ik(key: &[u8]) -> Vec<u8> {
        encode_internal_key(key, 1, ValueType::Value)
    }

    fn meta(number: u64, lo: &[u8], hi: &[u8]) -> FileMeta {
        FileMeta {
            number,
            size: 1000,
            smallest: ik(lo),
            largest: ik(hi),
            slices: Vec::new(),
        }
    }

    fn storage() -> Arc<MemStorage> {
        MemStorage::new(SsdDevice::new(SsdConfig::tiny_for_tests()))
    }

    #[test]
    fn edit_encoding_roundtrip() {
        let mut edit = VersionEdit {
            log_number: Some(12),
            next_file_number: Some(99),
            last_sequence: Some(123456),
            ..Default::default()
        };
        edit.compact_pointers.push((2, b"cursor".to_vec()));
        edit.deleted_files.push((1, 7));
        edit.new_files.push((2, meta(8, b"a", b"m")));
        edit.frozen_files.push((1, 9));
        edit.new_links.push((
            8,
            SliceLink {
                source_file: 9,
                range: KeyRange::new(&b"a"[..], &b"f"[..]),
                link_seq: 3,
                approx_bytes: 100,
            },
        ));
        edit.new_links.push((
            8,
            SliceLink {
                source_file: 9,
                range: KeyRange::from(&b"f"[..]),
                link_seq: 4,
                approx_bytes: 100,
            },
        ));
        edit.deleted_frozen.push(5);
        edit.replication_cursor = Some(17);
        let decoded = VersionEdit::decode(&edit.encode()).unwrap();
        assert_eq!(decoded, edit);
    }

    #[test]
    fn replication_cursor_survives_recovery() {
        let s = storage();
        {
            let mut primary = VersionSet::create(storage(), 4).unwrap();
            let mut follower = VersionSet::create(s.clone(), 4).unwrap();
            let f1 = primary.new_file_number();
            // Primary logs an edit; the follower materializes the file and
            // applies the same edit remotely.
            let edit = VersionEdit {
                new_files: vec![(1, meta(f1, b"a", b"c"))],
                ..Default::default()
            };
            primary.log_and_apply(edit.clone()).unwrap();
            let mut shipped = edit;
            shipped.next_file_number = Some(primary.next_file_number);
            shipped.last_sequence = Some(primary.last_sequence);
            follower.apply_remote_edit(&shipped).unwrap();
            assert_eq!(follower.replication_cursor, 1);
            assert_eq!(follower.current.level_files(1), 1);
            assert!(follower.next_file_number >= primary.next_file_number);
        }
        let follower = VersionSet::recover(s, 4).unwrap();
        assert_eq!(follower.replication_cursor, 1);
        assert_eq!(follower.current.level_files(1), 1);
    }

    #[test]
    fn shipper_links_files_and_streams_edits() {
        let s = storage();
        let mut vs = VersionSet::create(s.clone(), 4).unwrap();
        let f1 = vs.new_file_number();
        s.write_file(&table_file_name(f1), b"sstable bytes", IoClass::Other)
            .unwrap();
        vs.arm_shipper(Shipper::new(s.clone(), "backup-t@".to_string()));
        vs.log_and_apply(VersionEdit {
            new_files: vec![(1, meta(f1, b"a", b"c"))],
            ..Default::default()
        })
        .unwrap();
        assert!(s.exists(&format!("backup-t@{}", table_file_name(f1))));
        assert!(s.exists("backup-t@EDITS"));
        let (edits, files, _) = vs.shipper_stats().unwrap();
        assert_eq!((edits, files), (1, 1));
        // A trivial move re-adds the same file: stream grows, no new link.
        vs.log_and_apply(VersionEdit {
            deleted_files: vec![(1, f1)],
            new_files: vec![(2, meta(f1, b"a", b"c"))],
            ..Default::default()
        })
        .unwrap();
        let (edits, files, _) = vs.shipper_stats().unwrap();
        assert_eq!((edits, files), (2, 1));
        assert!(vs.shipping());
        assert!(vs.disarm_shipper().is_some());
        assert!(!vs.shipping());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(VersionEdit::decode(&[200]).is_err());
        let edit = VersionEdit {
            log_number: Some(12),
            ..Default::default()
        };
        let mut bytes = edit.encode();
        bytes.push(42); // unknown tag
        assert!(VersionEdit::decode(&bytes).is_err());
    }

    #[test]
    fn apply_add_delete() {
        let mut v = Version::new(3);
        let edit = VersionEdit {
            new_files: vec![(1, meta(5, b"a", b"c")), (1, meta(6, b"d", b"f"))],
            ..Default::default()
        };
        apply_edit(&mut v, &edit).unwrap();
        assert_eq!(v.level_files(1), 2);
        assert_eq!(v.level_bytes(1), 2000);
        v.check_invariants().unwrap();

        let edit = VersionEdit {
            deleted_files: vec![(1, 5)],
            ..Default::default()
        };
        apply_edit(&mut v, &edit).unwrap();
        assert_eq!(v.level_files(1), 1);
        assert!(v.find_file(6).is_some());
        assert!(v.find_file(5).is_none());

        // Deleting again is an error.
        let edit = VersionEdit {
            deleted_files: vec![(1, 5)],
            ..Default::default()
        };
        assert!(apply_edit(&mut v, &edit).is_err());
    }

    #[test]
    fn levels_stay_sorted_by_smallest() {
        let mut v = Version::new(3);
        let edit = VersionEdit {
            new_files: vec![(1, meta(5, b"m", b"p")), (1, meta(6, b"a", b"c"))],
            ..Default::default()
        };
        apply_edit(&mut v, &edit).unwrap();
        assert_eq!(v.levels[1][0].number, 6);
        assert_eq!(v.levels[1][1].number, 5);
        v.check_invariants().unwrap();
    }

    #[test]
    fn freeze_and_link_lifecycle() {
        let mut v = Version::new(3);
        apply_edit(
            &mut v,
            &VersionEdit {
                new_files: vec![
                    (1, meta(10, b"a", b"z")),
                    (2, meta(20, b"a", b"h")),
                    (2, meta(21, b"i", b"z")),
                ],
                ..Default::default()
            },
        )
        .unwrap();
        // Freeze file 10 and link its two slices to 20 and 21.
        apply_edit(
            &mut v,
            &VersionEdit {
                frozen_files: vec![(1, 10)],
                new_links: vec![
                    (
                        20,
                        SliceLink {
                            source_file: 10,
                            range: KeyRange::new(&b""[..], &b"i"[..]),
                            link_seq: 0,
                            approx_bytes: 100,
                        },
                    ),
                    (
                        21,
                        SliceLink {
                            source_file: 10,
                            range: KeyRange::from(&b"i"[..]),
                            link_seq: 1,
                            approx_bytes: 100,
                        },
                    ),
                ],
                ..Default::default()
            },
        )
        .unwrap();
        recompute_refcounts(&mut v);
        v.check_invariants().unwrap();
        assert_eq!(v.level_files(1), 0);
        assert_eq!(v.frozen_files(), 1);
        assert_eq!(v.frozen[&10].refcount, 2);
        assert_eq!(v.total_slice_links(), 2);
        assert_eq!(v.frozen_bytes(), 1000);

        // Merge 20: delete it, add replacement, drop its link; frozen 10
        // still referenced by 21's link.
        apply_edit(
            &mut v,
            &VersionEdit {
                deleted_files: vec![(2, 20)],
                new_files: vec![(2, meta(30, b"a", b"h"))],
                ..Default::default()
            },
        )
        .unwrap();
        recompute_refcounts(&mut v);
        v.check_invariants().unwrap();
        assert_eq!(v.frozen[&10].refcount, 1);

        // Merge 21 and delete the now-unreferenced frozen file.
        apply_edit(
            &mut v,
            &VersionEdit {
                deleted_files: vec![(2, 21)],
                new_files: vec![(2, meta(31, b"i", b"z"))],
                deleted_frozen: vec![10],
                ..Default::default()
            },
        )
        .unwrap();
        recompute_refcounts(&mut v);
        v.check_invariants().unwrap();
        assert_eq!(v.frozen_files(), 0);
    }

    #[test]
    fn freeze_with_slices_is_rejected() {
        let mut v = Version::new(3);
        apply_edit(
            &mut v,
            &VersionEdit {
                new_files: vec![(1, meta(10, b"a", b"z")), (2, meta(20, b"a", b"z"))],
                frozen_files: vec![(1, 10)],
                new_links: vec![(
                    20,
                    SliceLink {
                        source_file: 10,
                        range: KeyRange::all(),
                        link_seq: 0,
                        approx_bytes: 100,
                    },
                )],
                ..Default::default()
            },
        )
        .unwrap();
        // Level-2 file 20 now has a slice; freezing it must fail.
        let err = apply_edit(
            &mut v,
            &VersionEdit {
                frozen_files: vec![(2, 20)],
                ..Default::default()
            },
        );
        assert!(err.is_err());
    }

    #[test]
    fn overlap_queries() {
        let mut v = Version::new(3);
        apply_edit(
            &mut v,
            &VersionEdit {
                new_files: vec![
                    (1, meta(1, b"a", b"c")),
                    (1, meta(2, b"e", b"g")),
                    (1, meta(3, b"i", b"k")),
                ],
                ..Default::default()
            },
        )
        .unwrap();
        let hits = v.overlapping_files(1, b"f", b"j");
        assert_eq!(
            hits.iter().map(|f| f.number).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert!(v.overlapping_files(1, b"x", b"z").is_empty());
        // Boundary touch counts as overlap.
        assert_eq!(v.overlapping_files(1, b"c", b"c").len(), 1);
    }

    #[test]
    fn slices_covering_returns_newest_first() {
        let mut f = meta(1, b"a", b"z");
        f.slices.push(SliceLink {
            source_file: 100,
            range: KeyRange::new(&b"a"[..], &b"m"[..]),
            link_seq: 0,
            approx_bytes: 100,
        });
        f.slices.push(SliceLink {
            source_file: 101,
            range: KeyRange::new(&b"a"[..], &b"z"[..]),
            link_seq: 1,
            approx_bytes: 100,
        });
        let hits: Vec<u64> = f.slices_covering(b"b").map(|s| s.source_file).collect();
        assert_eq!(hits, vec![101, 100]);
        let hits: Vec<u64> = f.slices_covering(b"n").map(|s| s.source_file).collect();
        assert_eq!(hits, vec![101]);
    }

    #[test]
    fn version_set_create_and_log() {
        let s = storage();
        let mut vs = VersionSet::create(s.clone(), 4).unwrap();
        assert!(VersionSet::exists(s.as_ref()));
        let n1 = vs.new_file_number();
        let edit = VersionEdit {
            new_files: vec![(1, meta(n1, b"a", b"c"))],
            ..Default::default()
        };
        vs.log_and_apply(edit).unwrap();
        assert_eq!(vs.current.level_files(1), 1);
    }

    #[test]
    fn recovery_restores_full_state() {
        let s = storage();
        {
            let mut vs = VersionSet::create(s.clone(), 4).unwrap();
            let f1 = vs.new_file_number();
            let f2 = vs.new_file_number();
            let f3 = vs.new_file_number();
            vs.last_sequence = 555;
            vs.log_and_apply(VersionEdit {
                new_files: vec![
                    (1, meta(f1, b"a", b"m")),
                    (2, meta(f2, b"a", b"h")),
                    (2, meta(f3, b"i", b"z")),
                ],
                compact_pointers: vec![(1, b"m".to_vec())],
                ..Default::default()
            })
            .unwrap();
            let link_seq = vs.new_link_seq();
            vs.log_and_apply(VersionEdit {
                frozen_files: vec![(1, f1)],
                new_links: vec![(
                    f2,
                    SliceLink {
                        source_file: f1,
                        range: KeyRange::new(&b"a"[..], &b"i"[..]),
                        link_seq,
                        approx_bytes: 100,
                    },
                )],
                ..Default::default()
            })
            .unwrap();
        }
        let vs = VersionSet::recover(s.clone(), 4).unwrap();
        assert_eq!(vs.last_sequence, 555);
        assert_eq!(vs.current.level_files(1), 0);
        assert_eq!(vs.current.level_files(2), 2);
        assert_eq!(vs.current.frozen_files(), 1);
        assert_eq!(vs.current.total_slice_links(), 1);
        assert_eq!(vs.compact_pointers[1], b"m".to_vec());
        assert!(vs.link_counter >= 1);
        vs.current.check_invariants().unwrap();
        // The recovered frozen file's refcount was recomputed.
        let frozen = vs.current.frozen.values().next().unwrap();
        assert_eq!(frozen.refcount, 1);
    }

    #[test]
    fn recovery_after_recovery_is_stable() {
        let s = storage();
        {
            let mut vs = VersionSet::create(s.clone(), 4).unwrap();
            let f1 = vs.new_file_number();
            vs.log_and_apply(VersionEdit {
                new_files: vec![(1, meta(f1, b"a", b"c"))],
                ..Default::default()
            })
            .unwrap();
        }
        {
            let vs = VersionSet::recover(s.clone(), 4).unwrap();
            assert_eq!(vs.current.level_files(1), 1);
        }
        let vs = VersionSet::recover(s, 4).unwrap();
        assert_eq!(vs.current.level_files(1), 1);
    }

    #[test]
    fn invariant_checker_catches_overlap() {
        let mut v = Version::new(3);
        v.levels[1].push(meta(1, b"a", b"m"));
        v.levels[1].push(meta(2, b"l", b"z")); // overlaps
        assert!(v.check_invariants().is_err());
    }
}
