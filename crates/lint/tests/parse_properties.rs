//! Property tests for the item-level parser: rendering a synthetic item
//! list to Rust source and parsing it back must recover every function
//! with its name, impl owner, return type, and a body — regardless of
//! generics, where-clauses, and brace-bearing junk (strings, comments,
//! raw strings, nested blocks) inside the bodies.

use proptest::prelude::*;

use ldc_lint::lexer::SourceView;
use ldc_lint::parse::parse_file;

/// Return-type menu; index 0 means "no return type".
const RETS: &[&str] = &["", "u64", "Result<(), Error>", "Vec<T>", "Option<Box<F>>"];

/// Body fillers that have historically desynced naive scanners: braces in
/// strings, comments, raw strings, char literals, and comparisons.
const JUNK: &[&str] = &[
    "let s = \"}{ not a brace }\";",
    "/* { nested /* deeper { */ } */",
    "let r = r##\"} quote \"# inside\"##;",
    "if a < b { helper(); }",
    "let c = '}'; let l: &'static str = \"x\";",
    "{ let inner = 1; { let deeper = inner; } }",
];

#[derive(Debug, Clone)]
struct FnSpec {
    generics: bool,
    ret: usize,
    has_where: bool,
    junk: usize,
}

fn fn_spec() -> impl Strategy<Value = FnSpec> {
    (
        any::<bool>(),
        0usize..RETS.len(),
        any::<bool>(),
        0usize..JUNK.len(),
    )
        .prop_map(|(generics, ret, has_where, junk)| FnSpec {
            generics,
            ret,
            has_where,
            junk,
        })
}

fn render_fn(name: &str, spec: &FnSpec, indent: &str) -> String {
    let generics = if spec.generics {
        "<T: Clone, F: Fn(u32) -> u64>"
    } else {
        ""
    };
    let ret = if RETS[spec.ret].is_empty() {
        String::new()
    } else {
        format!(" -> {}", RETS[spec.ret])
    };
    let where_clause = if spec.has_where {
        " where T: Clone"
    } else {
        ""
    };
    format!(
        "{indent}fn {name}{generics}(a: u32, b: &[u8]){ret}{where_clause} {{ {} a }}\n",
        JUNK[spec.junk]
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn rendered_items_parse_back(
        free in prop::collection::vec(fn_spec(), 0..4),
        methods in prop::collection::vec(fn_spec(), 0..4),
        trait_impl in any::<bool>(),
    ) {
        let mut src = String::new();
        let mut expected: Vec<(String, Option<String>, usize)> = Vec::new();
        for (i, spec) in free.iter().enumerate() {
            let name = format!("free{i}");
            src.push_str(&render_fn(&name, spec, ""));
            expected.push((name, None, spec.ret));
        }
        if !methods.is_empty() {
            src.push_str("struct Owner;\n");
            if trait_impl {
                src.push_str("impl core::fmt::Debug for Owner {\n");
            } else {
                src.push_str("impl Owner {\n");
            }
            for (i, spec) in methods.iter().enumerate() {
                let name = format!("method{i}");
                src.push_str(&render_fn(&name, spec, "    "));
                expected.push((name, Some("Owner".to_string()), spec.ret));
            }
            src.push_str("}\n");
        }

        let view = SourceView::new(&src);
        let idx = parse_file("crates/lsm/src/gen.rs", &view);
        prop_assert_eq!(idx.fns.len(), expected.len(), "source:\n{}", src);
        for (item, (name, qual, ret)) in idx.fns.iter().zip(&expected) {
            prop_assert_eq!(&item.name, name, "source:\n{}", src);
            prop_assert_eq!(&item.qual, qual, "source:\n{}", src);
            prop_assert_eq!(&item.ret, RETS[*ret], "source:\n{}", src);
            let (open, close) = item.body.expect("every rendered fn has a body");
            prop_assert_eq!(view.code.as_bytes()[open], b'{', "source:\n{}", src);
            prop_assert_eq!(view.code.as_bytes()[close], b'}', "source:\n{}", src);
            prop_assert!(close > open, "source:\n{}", src);
        }
        prop_assert_eq!(&idx.crate_name, "lsm");
    }

    #[test]
    fn bodyless_trait_methods_roundtrip(
        specs in prop::collection::vec(fn_spec(), 1..4),
    ) {
        let mut src = String::from("trait Contract {\n");
        for (i, spec) in specs.iter().enumerate() {
            let ret = if RETS[spec.ret].is_empty() {
                String::new()
            } else {
                format!(" -> {}", RETS[spec.ret])
            };
            src.push_str(&format!("    fn decl{i}(&self, a: u32){ret};\n"));
        }
        src.push_str("}\n");
        let view = SourceView::new(&src);
        let idx = parse_file("crates/lsm/src/gen.rs", &view);
        prop_assert_eq!(idx.fns.len(), specs.len(), "source:\n{}", src);
        for (item, spec) in idx.fns.iter().zip(&specs) {
            prop_assert!(item.body.is_none(), "source:\n{}", src);
            prop_assert_eq!(&item.ret, RETS[spec.ret], "source:\n{}", src);
        }
    }
}
