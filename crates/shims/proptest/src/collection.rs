//! Collection strategies (`prop::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeMap;
use std::ops::Range;

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Strategy for a `Vec` whose length lies in `size` (half-open) and
/// whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "vec: empty size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// See [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

/// Strategy for a `BTreeMap` with between `size.start` and `size.end - 1`
/// entries. Key collisions may produce fewer entries than requested, as
/// with real proptest.
pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    assert!(size.start < size.end, "btree_map: empty size range");
    BTreeMapStrategy { key, value, size }
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.end - self.size.start) as u64;
        let target = self.size.start + rng.below(span) as usize;
        let mut map = BTreeMap::new();
        // Bounded attempts: collisions shrink the map rather than loop.
        for _ in 0..target * 4 + 16 {
            if map.len() >= target {
                break;
            }
            map.insert(self.key.gen_value(rng), self.value.gen_value(rng));
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_respects_size_range() {
        let strat = vec(any::<u8>(), 3..7);
        let mut rng = TestRng::from_seed(5);
        for _ in 0..200 {
            let v = strat.gen_value(&mut rng);
            assert!((3..7).contains(&v.len()), "len = {}", v.len());
        }
    }

    #[test]
    fn btree_map_hits_target_sizes() {
        let strat = btree_map(any::<u64>(), any::<u8>(), 1..50);
        let mut rng = TestRng::from_seed(6);
        for _ in 0..100 {
            let m = strat.gen_value(&mut rng);
            assert!((1..50).contains(&m.len()));
        }
    }
}
