//! Runtime lock-order sanitizer.
//!
//! The workspace's ranked locks (see `crates/lint/lock_order.toml`, the
//! same table the static `ldc-lint` `lock_order` rule checks) are wrapped
//! in the [`Mutex`]/[`RwLock`] types below. In **debug builds** with the
//! sanitizer enabled (`LDC_LOCKCHECK=1` in the environment, or
//! [`enable`] called from a test), every acquisition pushes a rank
//! witness onto a thread-local held-stack and panics — printing the held
//! stack and the declared order — if the new lock's rank does not exceed
//! every rank already held. Two instances of a `sharded` lock (cache
//! shards, per-memtable skiplists, per-request aggregates) may share a
//! rank; re-acquiring the *same* instance is still an inversion (the
//! std-backed locks deadlock rather than panic on re-entry, which a
//! test sweep cannot distinguish from a hang).
//!
//! Cost model mirrors tracing: **zero when compiled out** (release
//! builds carry no metadata and compile `lock()` down to the plain
//! `std::sync` call — same-seed bench outputs are byte-identical), and
//! one relaxed atomic load per acquisition when compiled in but
//! disabled.
//!
//! Locks are non-poisoning (`into_inner` recovery, like the parking_lot
//! shim): every protected region is a plain value transition, so a
//! panicking holder leaves consistent state behind.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::OnceLock;

/// The embedded hierarchy table (kept next to the static rule that also
/// reads it).
pub const LOCK_ORDER_TOML: &str = include_str!("../../lint/lock_order.toml");

/// One declared lock in the hierarchy table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockDef {
    /// `<crate>/<file-stem>::<field>`, e.g. `lsm/db::core`.
    pub id: String,
    /// Position in the hierarchy; smaller = acquired earlier.
    pub rank: u32,
    /// Whether many same-ranked instances exist (two *different*
    /// instances may be held together).
    pub sharded: bool,
    /// Free-text rationale (documentation only).
    pub note: String,
}

/// Parses the `lock_order.toml` subset: `[[lock]]` sections holding
/// `id`/`rank`/`sharded`/`note` keys. No external TOML crate by design —
/// the format is deliberately restricted to what this parser accepts, so
/// the static rule and the runtime checker can never disagree about it.
pub fn parse_lock_table(text: &str) -> Result<Vec<LockDef>, String> {
    let mut out: Vec<LockDef> = Vec::new();
    let mut cur: Option<LockDef> = None;
    let finish = |def: LockDef, out: &mut Vec<LockDef>| -> Result<(), String> {
        if def.id.is_empty() {
            return Err("lock entry missing `id`".to_string());
        }
        if def.rank == u32::MAX {
            return Err(format!("lock `{}` missing `rank`", def.id));
        }
        if out.iter().any(|d| d.id == def.id) {
            return Err(format!("duplicate lock id `{}`", def.id));
        }
        if out.iter().any(|d| d.rank == def.rank) {
            return Err(format!("duplicate rank {} (lock `{}`)", def.rank, def.id));
        }
        if out.last().is_some_and(|d| d.rank > def.rank) {
            return Err(format!(
                "lock `{}` breaks ascending rank order (keep the file sorted)",
                def.id
            ));
        }
        out.push(def);
        Ok(())
    };
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[lock]]" {
            if let Some(def) = cur.take() {
                finish(def, &mut out)?;
            }
            cur = Some(LockDef {
                id: String::new(),
                rank: u32::MAX,
                sharded: false,
                note: String::new(),
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "lock_order.toml line {}: expected `key = value`",
                i + 1
            ));
        };
        let Some(def) = cur.as_mut() else {
            return Err(format!(
                "lock_order.toml line {}: key outside a [[lock]] section",
                i + 1
            ));
        };
        let key = key.trim();
        let value = value.trim();
        let unquote = |v: &str| -> Result<String, String> {
            v.strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .map(str::to_string)
                .ok_or_else(|| format!("lock_order.toml line {}: expected a quoted string", i + 1))
        };
        match key {
            "id" => def.id = unquote(value)?,
            "rank" => {
                def.rank = value
                    .parse()
                    .map_err(|_| format!("lock_order.toml line {}: bad rank `{value}`", i + 1))?
            }
            "sharded" => {
                def.sharded = match value {
                    "true" => true,
                    "false" => false,
                    _ => {
                        return Err(format!(
                            "lock_order.toml line {}: bad bool `{value}`",
                            i + 1
                        ))
                    }
                }
            }
            "note" => def.note = unquote(value)?,
            _ => {
                return Err(format!(
                    "lock_order.toml line {}: unknown key `{key}`",
                    i + 1
                ))
            }
        }
    }
    if let Some(def) = cur.take() {
        finish(def, &mut out)?;
    }
    Ok(out)
}

/// The embedded table, parsed once. Panics on a malformed table: the
/// file is a build asset, and both checkers must agree on its contents.
pub fn declared_table() -> &'static [LockDef] {
    static TABLE: OnceLock<Vec<LockDef>> = OnceLock::new();
    TABLE.get_or_init(|| {
        parse_lock_table(LOCK_ORDER_TOML)
            .unwrap_or_else(|e| panic!("crates/lint/lock_order.toml is malformed: {e}"))
    })
}

// ---------------------------------------------------------------------------
// Active implementation (debug builds only).
// ---------------------------------------------------------------------------

#[cfg(debug_assertions)]
mod active {
    use super::declared_table;
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU8, Ordering};

    /// 0 = consult `LDC_LOCKCHECK` on first use, 1 = off, 2 = on.
    static STATE: AtomicU8 = AtomicU8::new(0);

    pub(super) fn enabled() -> bool {
        match STATE.load(Ordering::Relaxed) {
            2 => true,
            1 => false,
            _ => {
                let on =
                    std::env::var_os("LDC_LOCKCHECK").is_some_and(|v| v != "0" && !v.is_empty());
                STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
                on
            }
        }
    }

    pub(super) fn set_enabled(on: bool) {
        STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    }

    /// Resolved identity of one ranked lock.
    #[derive(Debug, Clone, Copy)]
    pub(super) struct Meta {
        pub rank: u32,
        pub sharded: bool,
        /// Index into [`declared_table`] (for the id in reports).
        pub idx: u16,
    }

    pub(super) fn resolve(id: &str) -> Meta {
        let table = declared_table();
        let idx = table.iter().position(|d| d.id == id).unwrap_or_else(|| {
            panic!(
                "lockcheck: lock id `{id}` is not declared in crates/lint/lock_order.toml — \
                 add it at its hierarchy position"
            )
        });
        Meta {
            rank: table[idx].rank,
            sharded: table[idx].sharded,
            idx: idx as u16,
        }
    }

    #[derive(Clone, Copy)]
    struct Held {
        rank: u32,
        idx: u16,
        instance: usize,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    }

    /// RAII witness of one acquisition on the current thread's held-stack.
    #[derive(Debug)]
    pub(super) struct Witness {
        meta: Meta,
        instance: usize,
        armed: bool,
    }

    pub(super) fn acquire(meta: Meta, instance: usize) -> Witness {
        let armed = enabled();
        if armed {
            check_and_push(meta, instance);
        }
        Witness {
            meta,
            instance,
            armed,
        }
    }

    impl Witness {
        /// Pops the held entry (used by condvar waits, which release the
        /// mutex while blocked).
        pub(super) fn disarm(&mut self) {
            if self.armed {
                pop(self.meta, self.instance);
                self.armed = false;
            }
        }

        /// Re-checks and re-pushes after a condvar wake re-acquired the
        /// mutex.
        pub(super) fn rearm(&mut self) {
            if !self.armed && enabled() {
                check_and_push(self.meta, self.instance);
                self.armed = true;
            }
        }
    }

    impl Drop for Witness {
        fn drop(&mut self) {
            self.disarm();
        }
    }

    fn check_and_push(meta: Meta, instance: usize) {
        HELD.with(|cell| {
            let mut held = cell.borrow_mut();
            let violation = held.iter().find(|h| {
                h.rank > meta.rank
                    || (h.rank == meta.rank && !(meta.sharded && h.instance != instance))
            });
            if let Some(bad) = violation {
                let report = report(&held, *bad, meta, instance);
                drop(held); // don't poison the thread-local across the unwind
                panic!("{report}");
            }
            held.push(Held {
                rank: meta.rank,
                idx: meta.idx,
                instance,
            });
        });
    }

    fn pop(meta: Meta, instance: usize) {
        HELD.with(|cell| {
            let mut held = cell.borrow_mut();
            // Guards may drop out of acquisition order: search from the top.
            if let Some(at) = held
                .iter()
                .rposition(|h| h.idx == meta.idx && h.instance == instance)
            {
                held.remove(at);
            }
        });
    }

    fn report(held: &[Held], bad: Held, meta: Meta, instance: usize) -> String {
        let table = declared_table();
        let id_of = |idx: u16| table[idx as usize].id.as_str();
        let mut out = String::from("lock-order inversion detected by ldc-obs lockcheck\n");
        out.push_str(&format!(
            "  acquiring: {} (rank {}, instance {:#x})\n",
            id_of(meta.idx),
            meta.rank,
            instance
        ));
        out.push_str(&format!(
            "  while holding {} (rank {}, instance {:#x}){}\n",
            id_of(bad.idx),
            bad.rank,
            bad.instance,
            if bad.rank == meta.rank {
                " — same rank, same instance or not sharded (re-entrant acquisition)"
            } else {
                " — held rank is LATER in the declared order"
            }
        ));
        out.push_str("  full held stack (acquisition order):\n");
        for h in held {
            out.push_str(&format!(
                "    {} (rank {}, instance {:#x})\n",
                id_of(h.idx),
                h.rank,
                h.instance
            ));
        }
        out.push_str("  declared order (crates/lint/lock_order.toml):\n");
        for d in table {
            out.push_str(&format!(
                "    rank {:>4}  {}{}\n",
                d.rank,
                d.id,
                if d.sharded { "  [sharded]" } else { "" }
            ));
        }
        out
    }

    /// Number of ranked locks the current thread holds (test helper).
    pub(super) fn held_depth() -> usize {
        HELD.with(|cell| cell.borrow().len())
    }
}

// ---------------------------------------------------------------------------
// Public switches (no-ops when compiled out).
// ---------------------------------------------------------------------------

/// Turns the sanitizer on for the whole process (debug builds; release
/// builds compile this to nothing). Equivalent to `LDC_LOCKCHECK=1`.
pub fn enable() {
    #[cfg(debug_assertions)]
    active::set_enabled(true);
}

/// Turns the sanitizer off.
pub fn disable() {
    #[cfg(debug_assertions)]
    active::set_enabled(false);
}

/// Whether acquisitions are being checked right now.
pub fn is_active() -> bool {
    #[cfg(debug_assertions)]
    {
        active::enabled()
    }
    #[cfg(not(debug_assertions))]
    {
        false
    }
}

/// Ranked locks held by the current thread (0 when compiled out). Lets
/// tests assert the held-stack drains back to empty.
pub fn held_depth() -> usize {
    #[cfg(debug_assertions)]
    {
        active::held_depth()
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

// ---------------------------------------------------------------------------
// Ranked lock wrappers.
// ---------------------------------------------------------------------------

/// A rank-witnessed mutex. `id` must appear in
/// `crates/lint/lock_order.toml`; in release builds the id is unused and
/// the type is exactly a non-poisoning `std::sync::Mutex`.
pub struct Mutex<T> {
    #[cfg(debug_assertions)]
    meta: active::Meta,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value` under the declared lock `id`. Panics (debug builds)
    /// on an id missing from the hierarchy table.
    pub fn new(id: &str, value: T) -> Mutex<T> {
        let _ = id;
        Mutex {
            #[cfg(debug_assertions)]
            meta: active::resolve(id),
            inner: std::sync::Mutex::new(value),
        }
    }

    #[cfg(debug_assertions)]
    fn instance(&self) -> usize {
        self as *const Mutex<T> as *const u8 as usize
    }

    /// Acquires the lock, checking rank order first (so an inversion
    /// panics instead of deadlocking).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let witness = active::acquire(self.meta, self.instance());
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard {
            inner: Some(inner),
            #[cfg(debug_assertions)]
            witness,
        }
    }

    /// Tries to acquire without blocking. The rank check still applies:
    /// an inversion panics even though `try_lock` itself cannot deadlock
    /// — the point is to catch the ordering bug deterministically.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        #[cfg(debug_assertions)]
        let witness = active::acquire(self.meta, self.instance());
        match self.inner.try_lock() {
            Ok(inner) => Some(MutexGuard {
                inner: Some(inner),
                #[cfg(debug_assertions)]
                witness,
            }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
                #[cfg(debug_assertions)]
                witness,
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard for [`Mutex`]. The witness pops off the held-stack on drop.
pub struct MutexGuard<'a, T> {
    /// `None` only transiently inside [`MutexGuard::wait`].
    inner: Option<std::sync::MutexGuard<'a, T>>,
    #[cfg(debug_assertions)]
    witness: active::Witness,
}

impl<'a, T> MutexGuard<'a, T> {
    /// Releases the mutex, blocks on `cv`, and re-acquires — the ranked
    /// equivalent of `Condvar::wait`. The witness pops for the duration
    /// of the wait and re-checks rank order on wake.
    pub fn wait(mut self, cv: &Condvar) -> MutexGuard<'a, T> {
        let inner = self.inner.take().expect("guard holds the mutex");
        #[cfg(debug_assertions)]
        self.witness.disarm();
        let inner = cv.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        #[cfg(debug_assertions)]
        self.witness.rearm();
        self.inner = Some(inner);
        self
    }

    /// Like [`MutexGuard::wait`] but gives up after `dur`; the second
    /// return value is `true` when the wait timed out. Used by stall
    /// loops that re-check progress conditions as a lost-wakeup backstop.
    pub fn wait_timeout(
        mut self,
        cv: &Condvar,
        dur: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let inner = self.inner.take().expect("guard holds the mutex");
        #[cfg(debug_assertions)]
        self.witness.disarm();
        let (inner, timed_out) = match cv.inner.wait_timeout(inner, dur) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r.timed_out())
            }
        };
        #[cfg(debug_assertions)]
        self.witness.rearm();
        self.inner = Some(inner);
        (self, timed_out)
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the mutex")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the mutex")
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Condition variable paired with the ranked [`Mutex`] (waits go through
/// [`MutexGuard::wait`] so the held-stack stays truthful while blocked).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condvar.
    pub fn new() -> Condvar {
        Condvar::default()
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A rank-witnessed reader-writer lock; see [`Mutex`].
pub struct RwLock<T> {
    #[cfg(debug_assertions)]
    meta: active::Meta,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value` under the declared lock `id`.
    pub fn new(id: &str, value: T) -> RwLock<T> {
        let _ = id;
        RwLock {
            #[cfg(debug_assertions)]
            meta: active::resolve(id),
            inner: std::sync::RwLock::new(value),
        }
    }

    #[cfg(debug_assertions)]
    fn instance(&self) -> usize {
        self as *const RwLock<T> as *const u8 as usize
    }

    /// Shared acquisition. Rank-checked like a write: a same-thread
    /// read-after-read of one instance is flagged too, because the
    /// std-backed lock may deadlock there when a writer is queued.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let witness = active::acquire(self.meta, self.instance());
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        RwLockReadGuard {
            inner,
            #[cfg(debug_assertions)]
            witness,
        }
    }

    /// Exclusive acquisition.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let witness = active::acquire(self.meta, self.instance());
        let inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        RwLockWriteGuard {
            inner,
            #[cfg(debug_assertions)]
            witness,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    #[cfg(debug_assertions)]
    #[allow(dead_code)] // held for its Drop impl
    witness: active::Witness,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    #[cfg(debug_assertions)]
    #[allow(dead_code)] // held for its Drop impl
    witness: active::Witness,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_parses_and_is_ranked() {
        let table = declared_table();
        assert!(table.len() >= 12, "hierarchy table suspiciously small");
        assert!(table.windows(2).all(|w| w[0].rank < w[1].rank));
        assert!(table.iter().any(|d| d.id == "lsm/db::core"));
        assert!(table.iter().any(|d| d.id == "obs/sink::writer"));
    }

    #[test]
    fn parser_rejects_malformed_tables() {
        assert!(
            parse_lock_table("[[lock]]\nrank = 1\n").is_err(),
            "missing id"
        );
        assert!(
            parse_lock_table("[[lock]]\nid = \"a\"\n").is_err(),
            "missing rank"
        );
        assert!(
            parse_lock_table("[[lock]]\nid = \"a\"\nrank = 1\n[[lock]]\nid = \"a\"\nrank = 2\n")
                .is_err(),
            "duplicate id"
        );
        assert!(
            parse_lock_table("[[lock]]\nid = \"a\"\nrank = 2\n[[lock]]\nid = \"b\"\nrank = 1\n")
                .is_err(),
            "descending ranks"
        );
        assert!(
            parse_lock_table("id = \"a\"\n").is_err(),
            "key before section"
        );
    }

    // The runtime checks only exist in debug builds; `cargo test` runs
    // debug by default, and the release test run simply skips these.
    #[cfg(debug_assertions)]
    mod runtime {
        use super::super::*;

        /// `enable`/`disable` flip process-global state; these tests must
        /// not interleave with each other.
        fn serial() -> std::sync::MutexGuard<'static, ()> {
            static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
            GATE.lock().unwrap_or_else(|e| e.into_inner())
        }

        fn ordered_pair() -> (Mutex<u32>, Mutex<u32>) {
            // core (rank 60) then cache::map (rank 100): forward order.
            (
                Mutex::new("lsm/db::core", 0),
                Mutex::new("lsm/cache::map", 0),
            )
        }

        #[test]
        fn forward_order_passes_and_stack_drains() {
            let _serial = serial();
            enable();
            let (a, b) = ordered_pair();
            {
                let _ga = a.lock();
                let _gb = b.lock();
                assert_eq!(held_depth(), 2);
            }
            assert_eq!(held_depth(), 0);
            disable();
        }

        #[test]
        fn inversion_panics_with_held_stack() {
            let _serial = serial();
            enable();
            let (a, b) = ordered_pair();
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _gb = b.lock();
                let _ga = a.lock(); // rank 60 while holding rank 100
            }))
            .expect_err("inversion must panic");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("lock-order inversion"), "{msg}");
            assert!(msg.contains("lsm/db::core"), "{msg}");
            assert!(msg.contains("lsm/cache::map"), "{msg}");
            assert!(msg.contains("declared order"), "{msg}");
            assert_eq!(held_depth(), 0, "unwound stack must drain");
            disable();
        }

        #[test]
        fn sharded_instances_may_coexist_but_not_reenter() {
            let _serial = serial();
            enable();
            let s1: Mutex<u32> = Mutex::new("lsm/cache::inner", 1);
            let s2: Mutex<u32> = Mutex::new("lsm/cache::inner", 2);
            {
                let _g1 = s1.lock();
                let _g2 = s2.lock(); // different instance, same rank: fine
            }
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _g1 = s1.lock();
                let _again = s1.lock(); // same instance: re-entrant
            }))
            .expect_err("re-entry must panic");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("re-entrant"), "{msg}");
            disable();
        }

        #[test]
        fn unknown_id_panics_at_construction() {
            let err = std::panic::catch_unwind(|| Mutex::new("nope/never::was", 0u8))
                .expect_err("unknown id must panic");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("not declared"), "{msg}");
        }

        #[test]
        fn condvar_wait_pops_and_reacquires() {
            let _serial = serial();
            use std::sync::Arc;
            enable();
            let pair = Arc::new((Mutex::new("lsm/commit::state", false), Condvar::new()));
            let waker = Arc::clone(&pair);
            let waiter = std::thread::spawn(move || {
                let (m, cv) = &*waker;
                let mut g = m.lock();
                while !*g {
                    g = g.wait(cv);
                }
                assert_eq!(held_depth(), 1, "guard re-armed after wake");
                drop(g);
                assert_eq!(held_depth(), 0);
            });
            // Let the waiter block, then flip the flag.
            std::thread::sleep(std::time::Duration::from_millis(20));
            {
                let (m, cv) = &*pair;
                *m.lock() = true;
                cv.notify_all();
            }
            waiter.join().expect("waiter thread");
            disable();
        }

        #[test]
        fn disabled_costs_nothing_and_checks_nothing() {
            let _serial = serial();
            disable();
            let (a, b) = ordered_pair();
            // Backwards acquisition with the sanitizer off: no panic.
            let _gb = b.lock();
            let _ga = a.lock();
            assert_eq!(held_depth(), 0);
        }

        #[test]
        fn try_lock_returns_none_when_contended() {
            let _serial = serial();
            disable();
            let m: Mutex<u32> = Mutex::new("lsm/db::core", 7);
            let g = m.lock();
            assert!(m.try_lock().is_none());
            drop(g);
            assert_eq!(*m.try_lock().expect("free now"), 7);
        }

        #[test]
        fn rwlock_read_write_and_get_mut() {
            let _serial = serial();
            disable();
            let mut l: RwLock<Vec<u32>> = RwLock::new("lsm/db::view", vec![1]);
            l.get_mut().push(2);
            assert_eq!(*l.read(), vec![1, 2]);
            l.write().push(3);
            assert_eq!(l.into_inner(), vec![1, 2, 3]);
        }
    }
}
