//! Fig 12(a)/(d) — impact of the SliceLink threshold `T_s`.
//!
//! Paper: the best threshold equals the fan-out (10). Small thresholds
//! merge too early (extra lower-level I/O per round); very large ones
//! fragment reads across many linked slices.

use ldc_bench::prelude::*;

fn main() {
    let args = CommonArgs::parse(30_000);
    let thresholds = [2usize, 5, 10, 15, 20, 30];
    let mut rows = Vec::new();
    for &t in &thresholds {
        let spec = WorkloadSpec::read_write_balanced(args.ops)
            .with_codec(args.codec())
            .with_seed(args.seed);
        let mut config = StoreConfig::new(System::Ldc);
        config.slice_link_threshold = Some(t);
        let result = run_experiment(&config, &spec);
        rows.push(vec![
            t.to_string(),
            format!("{:.0}", result.throughput()),
            mib(result.io.compaction_read_bytes()),
            mib(result.io.compaction_write_bytes()),
            result.db_stats.ldc_merges.to_string(),
        ]);
    }
    print_table(
        args.csv,
        &format!(
            "Fig 12a/d: SliceLink threshold sweep (RWB, {} ops, fan-out 10)",
            args.ops
        ),
        &[
            "T_s",
            "throughput (ops/s)",
            "compaction read (MiB)",
            "compaction write (MiB)",
            "ldc merges",
        ],
        &rows,
    );
    println!(
        "\nExpectation: compaction I/O falls monotonically as T_s grows \
         (Fig 12d), while throughput peaks near T_s = fan-out = 10 (Fig 12a)."
    );
}
