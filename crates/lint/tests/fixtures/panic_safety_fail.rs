// Fixture: panic sites on a production I/O path with no baseline entry —
// every one must be reported.
fn read_record(buf: &[u8]) -> u32 {
    let header = buf[0]; // flagged: index expression
    if header != 1 {
        panic!("bad header"); // flagged
    }
    decode(buf).unwrap() // flagged
}

fn decode(buf: &[u8]) -> Option<u32> {
    buf.get(1..5)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes"))) // flagged
}
