//! Property tests for the wire protocol: encode/decode round trips, and
//! the torn-frame guarantee — any truncation, mutation, or garbage input
//! decodes to a clean `ProtoError`, never a panic and never a bogus Ok.

use ldc_client::proto::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    FrameError, Request, Response, ResponseBody, ServerStats, ShardStat, Status,
};
use proptest::prelude::*;

fn request_from(tag: u8, a: Vec<u8>, b: Vec<u8>, n: u32, keys: Vec<Vec<u8>>) -> Request {
    match tag % 7 {
        0 => Request::Put { key: a, value: b },
        1 => Request::Get { key: a },
        2 => Request::Delete { key: a },
        3 => Request::Scan { start: a, limit: n },
        4 => Request::MultiGet { keys },
        5 => Request::Ping,
        _ => Request::Stats,
    }
}

fn status_from(tag: u8) -> Status {
    match tag % 9 {
        0 => Status::Ok,
        1 => Status::Overloaded,
        2 => Status::TransientStorage,
        3 => Status::Storage,
        4 => Status::Corruption,
        5 => Status::InvalidArgument,
        6 => Status::InvalidState,
        7 => Status::Protocol,
        _ => Status::ShuttingDown,
    }
}

fn body_from(tag: u8, a: Vec<u8>, entries: Vec<(Vec<u8>, Vec<u8>)>, n: u32) -> ResponseBody {
    match tag % 7 {
        0 => ResponseBody::None,
        1 => ResponseBody::Value(if n.is_multiple_of(2) { None } else { Some(a) }),
        2 => ResponseBody::Entries(entries),
        3 => ResponseBody::Values(
            entries
                .into_iter()
                .map(|(k, _)| if k.is_empty() { None } else { Some(k) })
                .collect(),
        ),
        4 => ResponseBody::Stats(ServerStats {
            shards: vec![ShardStat {
                accepted: u64::from(n),
                rejected: u64::from(n / 3),
                completed: u64::from(n / 2),
                depth: n % 128,
                capacity: 128,
                depth_high_water: n % 200,
            }],
            protocol_errors: u64::from(n % 5),
            follower: n.is_multiple_of(3),
            follower_lag: u64::from(n % 7),
            follower_cursor: u64::from(n),
        }),
        5 => ResponseBody::RetryAfterMs(n),
        _ => ResponseBody::Message(String::from_utf8_lossy(&a).into_owned()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 200, ..ProptestConfig::default() })]

    /// Requests survive an encode/decode round trip byte-exactly.
    #[test]
    fn request_roundtrip(
        req_id in any::<u64>(),
        tag in any::<u8>(),
        a in prop::collection::vec(any::<u8>(), 0..64),
        b in prop::collection::vec(any::<u8>(), 0..256),
        n in any::<u32>(),
        keys in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..24), 0..12),
    ) {
        let req = request_from(tag, a, b, n, keys);
        let bytes = encode_request(req_id, &req);
        let (id, back) = decode_request(&bytes).unwrap();
        prop_assert_eq!(id, req_id);
        prop_assert_eq!(back, req);
    }

    /// Responses survive an encode/decode round trip byte-exactly.
    #[test]
    fn response_roundtrip(
        req_id in any::<u64>(),
        stag in any::<u8>(),
        btag in any::<u8>(),
        shard in any::<u16>(),
        queue_ns in any::<u64>(),
        service_ns in any::<u64>(),
        a in prop::collection::vec(any::<u8>(), 0..64),
        entries in prop::collection::vec(
            (prop::collection::vec(any::<u8>(), 0..16),
             prop::collection::vec(any::<u8>(), 0..32)), 0..8),
        n in any::<u32>(),
    ) {
        let resp = Response {
            req_id,
            status: status_from(stag),
            shard,
            queue_ns,
            service_ns,
            body: body_from(btag, a, entries, n),
        };
        let bytes = encode_response(&resp);
        prop_assert_eq!(decode_response(&bytes).unwrap(), resp);
    }

    /// Every strict prefix of an encoded request fails to decode cleanly:
    /// truncation is an error, never a panic, never a silent success.
    #[test]
    fn truncated_request_is_clean_error(
        tag in any::<u8>(),
        a in prop::collection::vec(any::<u8>(), 0..48),
        b in prop::collection::vec(any::<u8>(), 0..48),
        n in any::<u32>(),
        keys in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..16), 0..6),
        frac in 0u32..1000,
    ) {
        let req = request_from(tag, a, b, n, keys);
        let bytes = encode_request(9, &req);
        let cut = (bytes.len() * frac as usize / 1000).min(bytes.len().saturating_sub(1));
        prop_assert!(decode_request(&bytes[..cut]).is_err());
    }

    /// Arbitrary garbage never panics the decoders.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    /// Single-byte mutations decode to either a clean error or a valid
    /// (possibly different) message — never a panic.
    #[test]
    fn mutated_request_never_panics(
        a in prop::collection::vec(any::<u8>(), 1..48),
        b in prop::collection::vec(any::<u8>(), 0..48),
        pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut bytes = encode_request(3, &Request::Put { key: a, value: b });
        let idx = pos % bytes.len();
        bytes[idx] ^= 1 << bit;
        let _ = decode_request(&bytes);
    }

    /// Torn streams: cutting a framed stream at any byte yields frames up
    /// to the cut, then a truncated-frame error or clean EOF exactly at a
    /// frame boundary — never a panic, never a phantom frame.
    #[test]
    fn torn_stream_yields_clean_frame_errors(
        bodies in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..40), 1..6),
        frac in 0u32..1000,
    ) {
        let mut stream = Vec::new();
        let mut boundaries = vec![0usize];
        for body in &bodies {
            write_frame(&mut stream, body).unwrap();
            boundaries.push(stream.len());
        }
        let cut = stream.len() * frac as usize / 1000;
        let mut r = std::io::Cursor::new(stream[..cut].to_vec());
        let mut seen = 0usize;
        let ended_clean = loop {
            match read_frame(&mut r) {
                Ok(frame) => {
                    prop_assert_eq!(&frame, &bodies[seen]);
                    seen += 1;
                }
                Err(FrameError::Eof) => break true,
                Err(FrameError::TruncatedFrame { .. }) => break false,
                Err(e) => return Err(TestCaseError::fail(format!("unexpected {e}"))),
            }
        };
        prop_assert_eq!(ended_clean, boundaries.contains(&cut));
    }
}
