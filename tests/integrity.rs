//! Integrity verification: `verify_integrity` must pass on healthy stores
//! (including ones with live LDC frozen/link state) and fail loudly on
//! injected corruption.

use std::sync::Arc;

use ldc::ssd::{IoClass, MemStorage, SsdConfig, SsdDevice, StorageBackend};
use ldc::{LdcDb, Options};

fn tiny_options() -> Options {
    Options {
        memtable_bytes: 8 << 10,
        sstable_bytes: 8 << 10,
        l1_capacity_bytes: 32 << 10,
        block_bytes: 1 << 10,
        ..Options::default()
    }
}

#[test]
fn healthy_store_verifies() {
    let db = LdcDb::builder().options(tiny_options()).build().unwrap();
    for i in 0..1500u32 {
        db.put(format!("k{i:06}").as_bytes(), format!("v{i}").as_bytes())
            .unwrap();
    }
    db.drain_background();
    let v = db.engine_ref().version();
    assert!(v.frozen_files() > 0 || v.total_slice_links() > 0 || db.stats().ldc_merges > 0);
    let entries = db.verify_integrity().unwrap();
    // The memtable tail is not on disk yet; everything flushed must verify.
    assert!(entries >= 1000, "verified only {entries} entries");
}

#[test]
fn corruption_is_detected_by_verify() {
    let storage: Arc<dyn StorageBackend> = MemStorage::new(SsdDevice::new(SsdConfig::default()));
    let db = LdcDb::builder()
        .options(tiny_options())
        .storage(Arc::clone(&storage))
        .build()
        .unwrap();
    for i in 0..1500u32 {
        db.put(format!("k{i:06}").as_bytes(), format!("v{i}").as_bytes())
            .unwrap();
    }
    db.drain_background();
    db.verify_integrity().unwrap();

    // Flip one byte in the middle of some SSTable.
    let victim = storage
        .list()
        .into_iter()
        .find(|n| n.ends_with(".sst"))
        .expect("an sstable exists");
    let mut bytes = storage.read_all(&victim, IoClass::Other).unwrap().to_vec();
    let mid = bytes.len() / 3;
    bytes[mid] ^= 0xff;
    storage.write_file(&victim, &bytes, IoClass::Other).unwrap();

    // Reopen so no cached Table/bloom state hides the damage.
    drop(db);
    let db = LdcDb::builder()
        .options(tiny_options())
        .storage(storage)
        .build()
        .unwrap();
    assert!(
        db.verify_integrity().is_err(),
        "verification missed injected corruption in {victim}"
    );
}
