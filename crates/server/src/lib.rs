//! `ldc-server`: a multi-shard TCP service layer over [`ldc_core::LdcDb`].
//!
//! The paper's engine work (lower-level driven compaction) lives below
//! this crate; `ldc-server` turns N independent engine instances into
//! one network service so the tail-latency story can be measured where
//! users feel it — over the wire:
//!
//! * [`ShardRouter`] — stable hash-range partitioning of the key space
//!   across N shards, with cross-shard merged scans and index-preserving
//!   multi-get grouping.
//! * [`AdmissionQueue`] — bounded per-shard queues with deterministic
//!   reject-with-retry-after backpressure; saturation is observable
//!   (metrics + wire `Stats`), never fatal.
//! * [`LdcServer`] — accept/reader/writer threads speaking the
//!   `ldc-client` wire protocol, one worker lane per shard, per-request
//!   blame traces (`admission` / `net` / `engine`), and a strict
//!   drain-and-flush shutdown ordering.
//!
//! Layering: depends on `ldc-core` (the engine facade), `ldc-client`
//! (the shared wire protocol), and `ldc-obs` — never on `ldc-lsm` or
//! `ldc-ssd` directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod admission;
mod router;
mod server;

pub use admission::{AdmissionQueue, ShardState};
pub use router::{merge_scan_parts, stable_hash, ShardRouter};
pub use server::{LdcServer, ServerConfig, ShardPauseGuard};
