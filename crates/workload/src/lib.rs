//! # ldc-workload — YCSB-style workload generation and measurement
//!
//! The LDC paper evaluates with the YCSB benchmark suite (§IV-A): uniform
//! or Zipf key distributions, 16-byte keys with 1-KiB values, and the
//! Table III operation mixes (WO / WH / RWB / RH / RO plus the SCN range-
//! query variants). This crate reproduces that harness as a deterministic
//! generator plus a virtual-time measurement runner:
//!
//! * [`Distribution`] / [`Sampler`] — uniform, zipfian (the Fig 11 sweep),
//!   latest, and hotspot key choosers;
//! * [`KeyCodec`] — scrambled 16-byte keys and sized values;
//! * [`WorkloadSpec`] — the paper's workload mixes as data;
//! * [`ArrivalSchedule`] — deterministic open-loop arrival schedules
//!   (fixed-rate and seeded-Poisson) for driven-load benches;
//! * [`Histogram`] — log-linear latency histogram (P90–P99.99 for Fig 8),
//!   the workspace-wide implementation re-exported from `ldc-obs`;
//! * [`run_workload`] — drives any [`KvInterface`] store and reports
//!   latencies, throughput, and the Fig 1 per-second trace.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod arrival;
mod distribution;
mod histogram;
mod keys;
mod runner;
mod spec;

pub use arrival::{ArrivalProcess, ArrivalSchedule};
pub use distribution::{Distribution, Sampler};
pub use histogram::Histogram;
pub use keys::KeyCodec;
pub use runner::{
    preload_workload, run_measured, run_workload, KvInterface, RunReport, SecondSample,
};
pub use spec::{ReadKind, WorkloadSpec};
