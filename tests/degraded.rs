//! Degraded-mode resilience: detection sweeps, quarantine serving, and
//! repair model-equivalence.
//!
//! Four claims, each tested end to end through the public facade:
//!
//! 1. **Detection sweep** — a single flipped bit anywhere in an SSTable is
//!    either detected (read error / refused open) or masked; no read ever
//!    serves a value that was not written.
//! 2. **Quarantine keeps serving** — under `CorruptionPolicy::Quarantine`
//!    a corrupt table is dropped on first contact and every key outside it
//!    keeps its exact value, with zero read-path latches.
//! 3. **Repair model-equivalence** — `repair_db` over a damaged store
//!    (corrupt table + lost manifest) reopens to a store whose every
//!    served value was acknowledged by the workload.
//! 4. **Repair idempotence** (property) — a second `repair_db` pass over
//!    arbitrary workloads changes nothing.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use ldc::ssd::{IoClass, MemStorage, SsdDevice, StorageBackend};
use ldc::{repair_db, CorruptionPolicy, LdcDb, Options};

fn tiny_options() -> Options {
    Options {
        memtable_bytes: 4 << 10,
        sstable_bytes: 4 << 10,
        l1_capacity_bytes: 16 << 10,
        block_bytes: 1 << 10,
        ..Options::default()
    }
}

fn key(i: u64) -> Vec<u8> {
    format!("key{i:05}").into_bytes()
}

fn value(i: u64, rev: u64) -> Vec<u8> {
    let mut v = format!("v{rev:02}-{i:05}-").into_bytes();
    v.resize(160, b'x');
    v
}

/// Builds a store with a few levels' worth of data, returning the storage
/// and the final model.
fn build_store(
    options: &Options,
    keys: u64,
    revs: u64,
) -> (Arc<dyn StorageBackend>, BTreeMap<Vec<u8>, Vec<u8>>) {
    let storage: Arc<dyn StorageBackend> = MemStorage::new(SsdDevice::with_defaults());
    let mut model = BTreeMap::new();
    {
        let db = LdcDb::builder()
            .options(options.clone())
            .storage(Arc::clone(&storage))
            .build()
            .unwrap();
        for rev in 0..revs {
            for i in 0..keys {
                db.put(&key(i), &value(i, rev)).unwrap();
                model.insert(key(i), value(i, rev));
            }
        }
        db.drain_background();
    }
    (storage, model)
}

fn open(storage: &Arc<dyn StorageBackend>, options: &Options) -> ldc::lsm::Result<LdcDb> {
    LdcDb::builder()
        .options(options.clone())
        .storage(Arc::clone(storage))
        .build()
}

fn sstables(storage: &Arc<dyn StorageBackend>) -> Vec<String> {
    let mut names: Vec<String> = storage
        .list()
        .into_iter()
        .filter(|n| n.ends_with(".sst"))
        .collect();
    names.sort();
    names
}

fn flip_bit(storage: &Arc<dyn StorageBackend>, name: &str, offset: u64) {
    let mut data = storage.read_all(name, IoClass::Other).unwrap().to_vec();
    let idx = usize::try_from(offset).unwrap() % data.len();
    data[idx] ^= 0x01;
    storage.write_file(name, &data, IoClass::Other).unwrap();
}

/// Claim 1: sweep a flipped bit across every live SSTable (one probe per
/// block, plus the footer region); every flip is either detected — by the
/// open or by the scrubber — or provably harmless: a bit the format never
/// reads back (e.g. a Bloom-filter bit that only adds a false positive),
/// in which case every key must still read back exactly.
#[test]
fn bit_flip_detection_sweep() {
    let options = tiny_options();
    let (storage, model) = build_store(&options, 96, 2);
    let names = sstables(&storage);
    assert!(!names.is_empty());

    for victim in names {
        let size = storage.size(&victim).unwrap();
        if size == 0 {
            continue;
        }
        let pristine = storage.read_all(&victim, IoClass::Other).unwrap().to_vec();
        // One probe per kilobyte block, plus the footer region.
        let mut offsets: Vec<u64> = (0..size).step_by(1 << 10).collect();
        offsets.push(size.saturating_sub(20));
        for offset in offsets {
            flip_bit(&storage, &victim, offset);
            match open(&storage, &options) {
                // Refusing the corrupt store entirely is detection.
                Err(_) => {}
                Ok(db) => {
                    let report = db.scrub().unwrap();
                    if !report.corruptions.iter().any(|c| c.file == victim) {
                        // Undetected: the flipped bit must be one the
                        // format never reads back — every key exact.
                        for (k, want) in &model {
                            let got = db.get(k).unwrap_or_else(|e| {
                                panic!(
                                    "{victim} offset {offset}: undetected flip \
                                     broke get({}): {e}",
                                    String::from_utf8_lossy(k)
                                )
                            });
                            assert_eq!(
                                got.as_ref(),
                                Some(want),
                                "{victim} offset {offset}: undetected flip \
                                 changed key {}",
                                String::from_utf8_lossy(k)
                            );
                        }
                    }
                }
            }
            // Restore the pristine bytes for the next probe.
            storage
                .write_file(&victim, &pristine, IoClass::Other)
                .unwrap();
        }
    }
}

/// Claim 2: quarantine drops the corrupt table on first contact and keeps
/// serving every key outside it, exactly, with no write-path latch.
#[test]
fn quarantine_keeps_serving_outside_the_corrupt_table() {
    let options = Options {
        corruption_policy: CorruptionPolicy::Quarantine,
        ..tiny_options()
    };
    let (storage, model) = build_store(&options, 96, 2);
    let victim = sstables(&storage)
        .into_iter()
        .max_by_key(|n| storage.size(n).unwrap_or(0))
        .unwrap();
    flip_bit(&storage, &victim, 700);

    let db = open(&storage, &options).expect("quarantine store reopens");
    let report = db.scrub().unwrap();
    assert!(!report.is_clean(), "scrub missed the flipped bit");
    assert_eq!(db.quarantined().len(), 1, "exactly one table quarantined");
    assert!(storage.exists(&format!("{victim}.quarantined")));
    assert!(!storage.exists(&victim));

    // Reads: exact outside the quarantined file, never an error.
    let mut missing = 0u64;
    for (k, want) in &model {
        match db.get(k).expect("no read latches under quarantine") {
            Some(v) => assert_eq!(&v, want),
            None => missing += 1,
        }
    }
    assert!(missing < model.len() as u64, "quarantine lost every key");
    // Writes still flow (no background latch) and read back.
    db.put(b"post-quarantine", b"alive").unwrap();
    assert_eq!(db.get(b"post-quarantine").unwrap(), Some(b"alive".to_vec()));
    // A second scrub over the survivors is clean.
    assert!(db.scrub().unwrap().is_clean());
}

/// Claim 3: corrupt table + deleted manifest, then `repair_db`: the store
/// reopens and serves only acknowledged values. Quarantining the table
/// that held a key's newest revision may roll that key back to an older
/// acknowledged value — never to one that was never written.
#[test]
fn repair_recovers_a_damaged_store_to_model_equivalence() {
    let options = tiny_options();
    let (storage, model) = build_store(&options, 96, 2);
    let names = sstables(&storage);
    assert!(
        names.len() >= 2,
        "need several tables for a meaningful test"
    );
    flip_bit(&storage, &names[0], 64);
    storage.delete("CURRENT").unwrap();

    let report = repair_db(Arc::clone(&storage), &options).unwrap();
    assert!(!report.manifest_recovered);
    assert_eq!(report.tables_quarantined, 1);
    assert!(report.tables_salvaged > 0);

    let db = open(&storage, &options).expect("repaired store reopens");
    let mut surviving = 0u64;
    for (k, want) in &model {
        if let Some(v) = db.get(k).unwrap() {
            if &v == want {
                surviving += 1;
            } else {
                // Rolled back with the quarantined table: still must be a
                // value this key actually held at some revision.
                let i: u64 = String::from_utf8_lossy(&k[3..]).parse().unwrap();
                assert!(
                    (0..2).any(|rev| v == value(i, rev)),
                    "repair fabricated a value for {}",
                    String::from_utf8_lossy(k)
                );
            }
        }
    }
    assert!(surviving > 0, "repair lost every key");
    // All-to-L0 re-homing must still satisfy the engine's invariants.
    db.engine_ref().version().check_invariants().unwrap();
    db.verify_integrity().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Claim 4: repairing a healthy store is lossless, and a second pass
    /// is a no-op — for arbitrary (small) workloads.
    #[test]
    fn repair_is_idempotent(keys in 16u64..64, revs in 1u64..3, seed in 0u64..1000) {
        let options = tiny_options();
        let storage: Arc<dyn StorageBackend> = MemStorage::new(SsdDevice::with_defaults());
        let mut model = BTreeMap::new();
        {
            let db = LdcDb::builder()
                .options(options.clone())
                .storage(Arc::clone(&storage))
                .build()
                .unwrap();
            for rev in 0..revs {
                for i in 0..keys {
                    // Seed scrambles which keys collide across revisions.
                    let k = key((i.wrapping_mul(seed | 1)) % keys);
                    db.put(&k, &value(i, rev)).unwrap();
                    model.insert(k, value(i, rev));
                }
            }
            db.drain_background();
        }

        let first = repair_db(Arc::clone(&storage), &options).unwrap();
        prop_assert_eq!(first.tables_quarantined, 0);
        let second = repair_db(Arc::clone(&storage), &options).unwrap();
        prop_assert_eq!(second.tables_quarantined, 0);
        prop_assert_eq!(second.tables_salvaged, 0);
        prop_assert_eq!(second.orphans_deleted, 0);
        prop_assert_eq!(second.wal_records_salvaged, 0);

        let db = open(&storage, &options).unwrap();
        for (k, want) in &model {
            let got = db.get(k).unwrap();
            prop_assert_eq!(got.as_ref(), Some(want));
        }
        db.verify_integrity().unwrap();
    }
}
