//! SSTable reading.

use std::sync::Arc;

use bytes::Bytes;
use ldc_ssd::{IoClass, StorageBackend};

use crate::block::{Block, BlockIter};
use crate::cache::BlockCache;
use crate::crc32c;
use crate::error::{corruption_at, corruption_in, Error, Result};
use crate::filter::BloomFilter;
use crate::table::{decode_footer, BlockHandle, BLOCK_TRAILER_SIZE, FOOTER_SIZE};
use crate::types::{
    encode_internal_key, parse_trailer, user_key, KeyRange, SequenceNumber, ValueType,
    MAX_SEQUENCE, TYPE_FOR_SEEK,
};

/// An open SSTable: pinned index + Bloom filter, data blocks via the cache.
pub struct Table {
    storage: Arc<dyn StorageBackend>,
    name: String,
    file_number: u64,
    size: u64,
    index: Block,
    filter: BloomFilter,
    cache: Arc<BlockCache>,
}

impl Table {
    /// Opens `name`, reading footer, index, and filter (charged as
    /// [`IoClass::Other`] metadata traffic).
    pub fn open(
        storage: Arc<dyn StorageBackend>,
        name: impl Into<String>,
        file_number: u64,
        cache: Arc<BlockCache>,
    ) -> Result<Arc<Table>> {
        let name = name.into();
        let size = storage.size(&name)?;
        if size < FOOTER_SIZE as u64 {
            return Err(corruption_in(&name, "table shorter than footer"));
        }
        let footer = storage.read(
            &name,
            size - FOOTER_SIZE as u64,
            FOOTER_SIZE as u64,
            IoClass::Other,
        )?;
        let (filter_handle, index_handle) = decode_footer(&footer)
            .map_err(|e| attribute_file(e, &name, size - FOOTER_SIZE as u64))?;
        let index_bytes =
            read_verified_block(storage.as_ref(), &name, index_handle, IoClass::Other)?;
        let index =
            Block::new(index_bytes).map_err(|e| attribute_file(e, &name, index_handle.offset))?;
        let filter_bytes =
            read_verified_block(storage.as_ref(), &name, filter_handle, IoClass::Other)?;
        let filter = BloomFilter::from_bytes(filter_bytes.to_vec());
        Ok(Arc::new(Table {
            storage,
            name,
            file_number,
            size,
            index,
            filter,
            cache,
        }))
    }

    /// File name backing this table.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// File number backing this table.
    pub fn file_number(&self) -> u64 {
        self.file_number
    }

    /// File size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Bloom filter check; `false` means the key is definitely absent.
    pub fn may_contain(&self, ukey: &[u8]) -> bool {
        self.filter.may_contain(ukey)
    }

    /// Size of the table's Bloom filter in bytes (Fig 13).
    pub fn filter_size(&self) -> usize {
        self.filter.size_bytes()
    }

    /// Bytes this open handle pins in memory (decoded index block plus
    /// Bloom filter) — charged against the block-cache budget by the table
    /// cache so open-table memory and cached-block memory share one pool.
    pub fn pinned_bytes(&self) -> usize {
        self.index.size() + self.filter.size_bytes()
    }

    /// Point lookup: the newest version of `ukey` with sequence <=
    /// `snapshot`, or `None`. The Bloom filter is consulted first. The
    /// value is a zero-copy [`Bytes`] slice of the cached block's backing
    /// buffer: it pins the decoded block and is never memcpy'd on the read
    /// path (callers copy only at the public facade boundary).
    pub fn get(
        &self,
        ukey: &[u8],
        snapshot: SequenceNumber,
        class: IoClass,
    ) -> Result<Option<(SequenceNumber, ValueType, Bytes)>> {
        if !self.filter.may_contain(ukey) {
            return Ok(None);
        }
        let probe = encode_internal_key(ukey, snapshot, TYPE_FOR_SEEK);
        let mut index_iter = self.index.iter();
        index_iter.seek(&probe);
        if !index_iter.valid() {
            return Ok(None);
        }
        let (handle, _) = BlockHandle::decode_from(index_iter.value())?;
        let block = self.read_data_block(handle, class)?;
        let mut it = block.iter();
        it.seek(&probe);
        if it.valid() && user_key(it.key()) == ukey {
            let (seq, vt) = parse_trailer(it.key());
            return Ok(Some((seq, vt, it.value_bytes())));
        }
        Ok(None)
    }

    /// Iterator over the whole table.
    pub fn iter(self: &Arc<Self>, class: IoClass) -> TableIter {
        self.range_iter(KeyRange::all(), class)
    }

    /// Iterator restricted to a user-key range (the slice read path).
    pub fn range_iter(self: &Arc<Self>, range: KeyRange, class: IoClass) -> TableIter {
        TableIter {
            table: Arc::clone(self),
            class,
            index_iter: self.index.iter(),
            data_iter: None,
            range,
            error: None,
            exhausted: false,
        }
    }

    /// Integrity check: walks the index and re-reads every data block,
    /// verifying each CRC and the key ordering inside and across blocks.
    /// Returns the number of entries verified.
    pub fn verify(&self, class: IoClass) -> Result<u64> {
        self.verify_deep(class).map(|s| s.entries)
    }

    /// Exhaustive integrity check for the online scrubber. On top of
    /// [`Table::verify`]'s per-block CRC and ordering checks, it verifies
    /// index/footer consistency (every handle stays inside the file, index
    /// separators bound their block's keys) and filter-vs-key agreement
    /// (every stored user key passes the Bloom filter — a false negative
    /// means the filter block and data blocks disagree).
    pub fn verify_deep(&self, class: IoClass) -> Result<TableScrubStats> {
        let mut index_iter = self.index.iter();
        index_iter.seek_to_first();
        let mut stats = TableScrubStats::default();
        let mut prev: Option<Vec<u8>> = None;
        while index_iter.valid() {
            let (handle, _) = BlockHandle::decode_from(index_iter.value())?;
            let block_end = handle
                .offset
                .checked_add(handle.size)
                .and_then(|e| e.checked_add(BLOCK_TRAILER_SIZE as u64));
            if block_end.is_none_or(|end| end > self.size) {
                return Err(corruption_at(
                    &self.name,
                    handle.offset,
                    "index handle out of file bounds",
                ));
            }
            let block = read_verified_block(self.storage.as_ref(), &self.name, handle, class)
                .and_then(Block::new)
                .map_err(|e| attribute_file(e, &self.name, handle.offset))?;
            let separator = index_iter.key().to_vec();
            let mut it = block.iter();
            it.seek_to_first();
            while it.valid() {
                if let Some(p) = &prev {
                    if crate::types::compare_internal_keys(p, it.key()).is_ge() {
                        return Err(corruption_at(
                            &self.name,
                            handle.offset,
                            "keys out of order",
                        ));
                    }
                }
                if crate::types::compare_internal_keys(it.key(), &separator).is_gt() {
                    return Err(corruption_at(
                        &self.name,
                        handle.offset,
                        "index separator below block keys",
                    ));
                }
                if !self.filter.may_contain(user_key(it.key())) {
                    return Err(corruption_at(
                        &self.name,
                        handle.offset,
                        "filter excludes a stored key",
                    ));
                }
                prev = Some(it.key().to_vec());
                stats.entries += 1;
                it.next();
            }
            stats.blocks += 1;
            stats.bytes += handle.size + BLOCK_TRAILER_SIZE as u64;
            index_iter.next();
        }
        Ok(stats)
    }

    fn read_data_block(&self, handle: BlockHandle, class: IoClass) -> Result<Arc<Block>> {
        self.read_data_block_inner(handle, class, false)
    }

    fn read_data_block_inner(
        &self,
        handle: BlockHandle,
        class: IoClass,
        sequential: bool,
    ) -> Result<Arc<Block>> {
        self.cache
            .get_or_load((self.file_number, handle.offset), || {
                let bytes =
                    read_block_bytes(self.storage.as_ref(), &self.name, handle, class, sequential)?;
                Block::new(bytes)
            })
            .map_err(|e| attribute_file(e, &self.name, handle.offset))
    }
}

/// Attributes an unattributed corruption error to `name` at `offset`.
/// Errors that already name a file (or are not corruption) pass through.
fn attribute_file(err: Error, name: &str, offset: u64) -> Error {
    match err {
        Error::Corruption(mut info) if info.file.is_empty() => {
            info.file = name.to_string();
            if info.offset.is_none() {
                info.offset = Some(offset);
            }
            Error::Corruption(info)
        }
        e => e,
    }
}

/// What one deep verification pass over a table covered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableScrubStats {
    /// Entries whose ordering and filter membership were checked.
    pub entries: u64,
    /// Data blocks whose CRCs were re-verified.
    pub blocks: u64,
    /// Bytes read and verified (payload + trailers).
    pub bytes: u64,
}

/// Reads a block plus trailer and verifies its CRC.
fn read_verified_block(
    storage: &dyn StorageBackend,
    name: &str,
    handle: BlockHandle,
    class: IoClass,
) -> Result<Bytes> {
    read_block_bytes(storage, name, handle, class, false)
}

/// Reads a block plus trailer (optionally as a sequential-stream
/// continuation) and verifies its CRC.
fn read_block_bytes(
    storage: &dyn StorageBackend,
    name: &str,
    handle: BlockHandle,
    class: IoClass,
    sequential: bool,
) -> Result<Bytes> {
    let len = handle.size + BLOCK_TRAILER_SIZE as u64;
    let raw = if sequential {
        storage.read_sequential(name, handle.offset, len, class)?
    } else {
        storage.read(name, handle.offset, len, class)?
    };
    if (raw.len() as u64) < len {
        return Err(corruption_at(
            name,
            handle.offset,
            format!("short block read: got {} of {len} bytes", raw.len()),
        ));
    }
    let (payload, trailer) = raw.split_at(handle.size as usize);
    let stored_bytes: [u8; 4] = trailer
        .get(1..5)
        .and_then(|b| b.try_into().ok())
        .ok_or_else(|| corruption_at(name, handle.offset, "truncated block trailer"))?;
    let compression = trailer[0]; // ldc-lint: allow(panic_safety) — length proven >= trailer size above
    if compression != 0 {
        return Err(corruption_at(
            name,
            handle.offset,
            format!("unsupported compression tag {compression}"),
        ));
    }
    let stored = u32::from_le_bytes(stored_bytes);
    let actual = crc32c::extend(crc32c::crc32c(payload), &[compression]);
    if crc32c::unmask(stored) != actual {
        return Err(corruption_at(name, handle.offset, "block crc mismatch"));
    }
    Ok(raw.slice(0..handle.size as usize))
}

/// Two-level iterator (index block -> data blocks), optionally bounded to a
/// user-key range.
pub struct TableIter {
    table: Arc<Table>,
    class: IoClass,
    index_iter: BlockIter,
    data_iter: Option<BlockIter>,
    range: KeyRange,
    error: Option<Error>,
    /// Set once the exclusive upper bound is crossed; `next` is then a no-op.
    exhausted: bool,
}

impl TableIter {
    /// Whether positioned at an entry inside the range.
    pub fn valid(&self) -> bool {
        self.error.is_none()
            && !self.exhausted
            && self
                .data_iter
                .as_ref()
                .map(|it| it.valid())
                .unwrap_or(false)
    }

    /// Any I/O or corruption error hit while iterating.
    pub fn status(&self) -> Result<()> {
        match &self.error {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Positions at the first entry of the range.
    pub fn seek_to_first(&mut self) {
        self.exhausted = false;
        if self.range.lo.is_empty() {
            self.index_iter.seek_to_first();
            self.init_data_block(false);
            if let Some(it) = self.data_iter.as_mut() {
                it.seek_to_first();
            }
            self.skip_empty_blocks_forward();
            self.enforce_upper_bound();
        } else {
            let probe = encode_internal_key(&self.range.lo.clone(), MAX_SEQUENCE, TYPE_FOR_SEEK);
            self.seek(&probe);
        }
    }

    /// Positions at the first entry >= `target` (internal key) within range.
    pub fn seek(&mut self, target: &[u8]) {
        self.exhausted = false;
        // A target at or past the exclusive upper bound cannot match: skip
        // the index/block reads entirely (this keeps slice iterators whose
        // range lies left of a scan's start from costing any I/O).
        if let Some(hi) = self.range.hi.as_deref() {
            if user_key(target) >= hi {
                self.exhausted = true;
                self.data_iter = None;
                return;
            }
        }
        // Clamp to the range's lower bound.
        let lo_probe;
        let target = if user_key(target) < self.range.lo.as_slice() {
            lo_probe = encode_internal_key(&self.range.lo, MAX_SEQUENCE, TYPE_FOR_SEEK);
            lo_probe.as_slice()
        } else {
            target
        };
        self.index_iter.seek(target);
        self.init_data_block(false);
        if let Some(it) = self.data_iter.as_mut() {
            it.seek(target);
        }
        self.skip_empty_blocks_forward();
        self.enforce_upper_bound();
    }

    /// Advances to the next entry within range.
    pub fn next(&mut self) {
        if self.exhausted || self.error.is_some() {
            return;
        }
        if let Some(it) = self.data_iter.as_mut() {
            if it.valid() {
                it.next();
            }
        }
        self.skip_empty_blocks_forward();
        self.enforce_upper_bound();
    }

    /// Current internal key (empty unless [`TableIter::valid`]).
    pub fn key(&self) -> &[u8] {
        debug_assert!(self.valid(), "key() on invalid iterator");
        self.data_iter.as_ref().map(|it| it.key()).unwrap_or(&[])
    }

    /// Current value (empty unless [`TableIter::valid`]).
    pub fn value(&self) -> &[u8] {
        debug_assert!(self.valid(), "value() on invalid iterator");
        self.data_iter.as_ref().map(|it| it.value()).unwrap_or(&[])
    }

    fn init_data_block(&mut self, sequential: bool) {
        self.data_iter = None;
        if !self.index_iter.valid() {
            return;
        }
        match BlockHandle::decode_from(self.index_iter.value())
            .and_then(|(h, _)| self.table.read_data_block_inner(h, self.class, sequential))
        {
            Ok(block) => self.data_iter = Some(block.iter()),
            Err(e) => self.error = Some(e),
        }
    }

    /// While the data iterator is exhausted, move to the next data block.
    fn skip_empty_blocks_forward(&mut self) {
        loop {
            if self.error.is_some() {
                return;
            }
            match self.data_iter.as_ref() {
                Some(it) if it.valid() => return,
                _ => {}
            }
            if !self.index_iter.valid() {
                self.data_iter = None;
                return;
            }
            self.index_iter.next();
            if !self.index_iter.valid() {
                self.data_iter = None;
                return;
            }
            self.init_data_block(true);
            if let Some(it) = self.data_iter.as_mut() {
                it.seek_to_first();
            }
        }
    }

    /// Marks the iterator exhausted once it crosses the upper bound.
    fn enforce_upper_bound(&mut self) {
        if let (Some(hi), Some(it)) = (self.range.hi.as_deref(), self.data_iter.as_ref()) {
            if it.valid() && user_key(it.key()) >= hi {
                self.exhausted = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::builder::TableBuilder;
    use ldc_ssd::{MemStorage, SsdConfig, SsdDevice};

    fn ik(key: &[u8], seq: u64) -> Vec<u8> {
        encode_internal_key(key, seq, ValueType::Value)
    }

    fn build_table(n: usize) -> (Arc<MemStorage>, Arc<Table>) {
        let storage = MemStorage::new(SsdDevice::new(SsdConfig::tiny_for_tests()));
        let mut b = TableBuilder::new(512, 4, 10);
        for i in 0..n {
            b.add(
                &ik(format!("key{i:05}").as_bytes(), 1),
                format!("value{i}").as_bytes(),
            );
        }
        let finished = b.finish();
        storage
            .write_file("000001.sst", &finished.bytes, IoClass::FlushWrite)
            .unwrap();
        let cache = Arc::new(BlockCache::new(1 << 20));
        let table = Table::open(storage.clone(), "000001.sst", 1, cache).unwrap();
        (storage, table)
    }

    #[test]
    fn point_lookups_hit_and_miss() {
        let (_s, table) = build_table(500);
        let hit = table
            .get(b"key00042", MAX_SEQUENCE, IoClass::UserRead)
            .unwrap();
        let (seq, vt, value) = hit.unwrap();
        assert_eq!(seq, 1);
        assert_eq!(vt, ValueType::Value);
        assert_eq!(&value[..], b"value42");
        assert!(table
            .get(b"nokey", MAX_SEQUENCE, IoClass::UserRead)
            .unwrap()
            .is_none());
        // Key beyond the table's range.
        assert!(table
            .get(b"zzz", MAX_SEQUENCE, IoClass::UserRead)
            .unwrap()
            .is_none());
    }

    #[test]
    fn snapshot_visibility_in_tables() {
        let storage = MemStorage::new(SsdDevice::new(SsdConfig::tiny_for_tests()));
        let mut b = TableBuilder::new(512, 4, 10);
        // Newest first within a user key.
        b.add(&encode_internal_key(b"k", 9, ValueType::Value), b"new");
        b.add(&encode_internal_key(b"k", 4, ValueType::Deletion), b"");
        b.add(&encode_internal_key(b"k", 2, ValueType::Value), b"old");
        let finished = b.finish();
        storage
            .write_file("t.sst", &finished.bytes, IoClass::FlushWrite)
            .unwrap();
        let table = Table::open(storage, "t.sst", 1, Arc::new(BlockCache::new(1 << 20))).unwrap();

        let (seq, vt, v) = table.get(b"k", 100, IoClass::UserRead).unwrap().unwrap();
        assert_eq!((seq, vt, &v[..]), (9, ValueType::Value, &b"new"[..]));
        let (seq, vt, _) = table.get(b"k", 5, IoClass::UserRead).unwrap().unwrap();
        assert_eq!((seq, vt), (4, ValueType::Deletion));
        let (seq, _, v) = table.get(b"k", 2, IoClass::UserRead).unwrap().unwrap();
        assert_eq!((seq, &v[..]), (2, &b"old"[..]));
    }

    #[test]
    fn full_iteration_in_order() {
        let (_s, table) = build_table(300);
        let mut it = table.iter(IoClass::UserRead);
        it.seek_to_first();
        let mut count = 0;
        let mut prev: Option<Vec<u8>> = None;
        while it.valid() {
            if let Some(p) = &prev {
                assert!(crate::types::compare_internal_keys(p, it.key()).is_lt());
            }
            prev = Some(it.key().to_vec());
            count += 1;
            it.next();
        }
        assert_eq!(count, 300);
        it.status().unwrap();
    }

    #[test]
    fn seek_positions_across_blocks() {
        let (_s, table) = build_table(300);
        let mut it = table.iter(IoClass::UserRead);
        it.seek(&encode_internal_key(
            b"key00150",
            MAX_SEQUENCE,
            TYPE_FOR_SEEK,
        ));
        assert!(it.valid());
        assert_eq!(user_key(it.key()), b"key00150");
        it.seek(&ik(b"key00150x", MAX_SEQUENCE));
        assert_eq!(user_key(it.key()), b"key00151");
        it.seek(&ik(b"zzz", MAX_SEQUENCE));
        assert!(!it.valid());
    }

    #[test]
    fn range_iterator_honors_bounds() {
        let (_s, table) = build_table(300);
        let range = KeyRange::new(&b"key00100"[..], &b"key00110"[..]);
        let mut it = table.range_iter(range, IoClass::UserRead);
        it.seek_to_first();
        let mut seen = Vec::new();
        while it.valid() {
            seen.push(user_key(it.key()).to_vec());
            it.next();
        }
        assert_eq!(seen.len(), 10);
        assert_eq!(seen.first().unwrap().as_slice(), b"key00100");
        assert_eq!(seen.last().unwrap().as_slice(), b"key00109");
    }

    #[test]
    fn range_iterator_clamps_seeks_below_lo() {
        let (_s, table) = build_table(300);
        let range = KeyRange::new(&b"key00100"[..], &b"key00110"[..]);
        let mut it = table.range_iter(range, IoClass::UserRead);
        it.seek(&ik(b"key00000", MAX_SEQUENCE));
        assert!(it.valid());
        assert_eq!(user_key(it.key()), b"key00100");
    }

    #[test]
    fn bloom_filter_skips_block_reads() {
        let (s, table) = build_table(300);
        let reads_before = s.device().io_stats().total_read_bytes();
        for i in 0..100 {
            let key = format!("absent{i:05}");
            let r = table
                .get(key.as_bytes(), MAX_SEQUENCE, IoClass::UserRead)
                .unwrap();
            assert!(r.is_none());
        }
        let reads_after = s.device().io_stats().total_read_bytes();
        // With ~1% fp rate, at most a couple of the 100 probes read a block.
        assert!(
            reads_after - reads_before < 5 * 512,
            "bloom should avoid almost all reads: {}",
            reads_after - reads_before
        );
    }

    #[test]
    fn corruption_is_detected() {
        let storage = MemStorage::new(SsdDevice::new(SsdConfig::tiny_for_tests()));
        let mut b = TableBuilder::new(512, 4, 10);
        for i in 0..50 {
            b.add(&ik(format!("k{i:03}").as_bytes(), 1), b"v");
        }
        let finished = b.finish();
        let mut bytes = finished.bytes;
        // Corrupt a byte inside the first data block.
        bytes[5] ^= 0xff;
        storage
            .write_file("bad.sst", &bytes, IoClass::FlushWrite)
            .unwrap();
        let table = Table::open(storage, "bad.sst", 1, Arc::new(BlockCache::new(0))).unwrap();
        let err = table.get(b"k000", MAX_SEQUENCE, IoClass::UserRead);
        assert!(matches!(err, Err(Error::Corruption(_))));
    }

    #[test]
    fn missing_file_fails_to_open() {
        let storage = MemStorage::new(SsdDevice::new(SsdConfig::tiny_for_tests()));
        assert!(Table::open(storage, "nope.sst", 1, Arc::new(BlockCache::new(0))).is_err());
    }
}
