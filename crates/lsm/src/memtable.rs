//! The in-memory write buffer (`C_0` in the paper's Definition 2.2).

use crate::skiplist::{SkipList, SkipListIter};
use crate::types::{
    compare_internal_keys, encode_internal_key, parse_trailer, user_key, SequenceNumber, ValueType,
    TYPE_FOR_SEEK,
};

/// Outcome of a memtable point lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupResult {
    /// The key is live with this value.
    Found(Vec<u8>),
    /// The key was deleted (tombstone) — stop searching older levels.
    Deleted,
    /// The memtable knows nothing about this key.
    NotFound,
}

/// Ordered in-memory buffer of recent writes.
pub struct MemTable {
    list: SkipList,
}

impl MemTable {
    /// Creates an empty memtable; `seed` determinizes skiplist heights.
    pub fn new(seed: u64) -> Self {
        Self {
            list: SkipList::new(seed),
        }
    }

    /// Number of entries (including tombstones).
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether no entries exist.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Approximate memory footprint, compared against the flush threshold.
    pub fn approximate_bytes(&self) -> usize {
        self.list.approximate_bytes()
    }

    /// Records a put or delete at sequence `seq`.
    pub fn add(&mut self, seq: SequenceNumber, vt: ValueType, key: &[u8], value: &[u8]) {
        let ikey = encode_internal_key(key, seq, vt);
        self.list.insert(ikey, value.to_vec());
    }

    /// Looks up `key` as of `snapshot` (inclusive).
    pub fn get(&self, key: &[u8], snapshot: SequenceNumber) -> LookupResult {
        let probe = encode_internal_key(key, snapshot, TYPE_FOR_SEEK);
        let mut it = self.list.iter();
        it.seek(&probe);
        if !it.valid() || user_key(it.key()) != key {
            return LookupResult::NotFound;
        }
        let (_, vt) = parse_trailer(it.key());
        match vt {
            ValueType::Value => LookupResult::Found(it.value().to_vec()),
            ValueType::Deletion => LookupResult::Deleted,
        }
    }

    /// Iterator over internal entries in sorted order.
    pub fn iter(&self) -> MemTableIter<'_> {
        MemTableIter {
            inner: self.list.iter(),
        }
    }
}

/// Iterator over a memtable's internal entries.
pub struct MemTableIter<'a> {
    inner: SkipListIter<'a>,
}

impl MemTableIter<'_> {
    /// Whether positioned at an entry.
    pub fn valid(&self) -> bool {
        self.inner.valid()
    }

    /// Positions at the first entry.
    pub fn seek_to_first(&mut self) {
        self.inner.seek_to_first();
    }

    /// Positions at the first entry with internal key >= `target`.
    pub fn seek(&mut self, target: &[u8]) {
        self.inner.seek(target);
    }

    /// Advances.
    pub fn next(&mut self) {
        self.inner.next();
    }

    /// Current internal key.
    pub fn key(&self) -> &[u8] {
        self.inner.key()
    }

    /// Current value (empty for tombstones).
    pub fn value(&self) -> &[u8] {
        self.inner.value()
    }
}

/// Checks memtable iteration order in tests and debug assertions.
pub fn assert_sorted(mem: &MemTable) {
    let mut it = mem.iter();
    it.seek_to_first();
    let mut prev: Option<Vec<u8>> = None;
    while it.valid() {
        if let Some(p) = &prev {
            assert!(
                compare_internal_keys(p, it.key()).is_lt(),
                "memtable out of order"
            );
        }
        prev = Some(it.key().to_vec());
        it.next();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_returns_latest_visible_version() {
        let mut mem = MemTable::new(1);
        mem.add(1, ValueType::Value, b"k", b"v1");
        mem.add(5, ValueType::Value, b"k", b"v2");
        assert_eq!(mem.get(b"k", 100), LookupResult::Found(b"v2".to_vec()));
        // A snapshot between the two versions sees the old value.
        assert_eq!(mem.get(b"k", 3), LookupResult::Found(b"v1".to_vec()));
        // A snapshot before the first write sees nothing.
        assert_eq!(mem.get(b"k", 0), LookupResult::NotFound);
    }

    #[test]
    fn tombstones_shadow_older_values() {
        let mut mem = MemTable::new(1);
        mem.add(1, ValueType::Value, b"k", b"v");
        mem.add(2, ValueType::Deletion, b"k", b"");
        assert_eq!(mem.get(b"k", 100), LookupResult::Deleted);
        assert_eq!(mem.get(b"k", 1), LookupResult::Found(b"v".to_vec()));
    }

    #[test]
    fn unknown_key_is_not_found() {
        let mut mem = MemTable::new(1);
        mem.add(1, ValueType::Value, b"a", b"v");
        assert_eq!(mem.get(b"b", 100), LookupResult::NotFound);
        // Prefix of an existing key is a different key.
        assert_eq!(mem.get(b"", 100), LookupResult::NotFound);
    }

    #[test]
    fn iterator_walks_all_versions_sorted() {
        let mut mem = MemTable::new(1);
        mem.add(3, ValueType::Value, b"b", b"b3");
        mem.add(1, ValueType::Value, b"a", b"a1");
        mem.add(2, ValueType::Deletion, b"a", b"");
        assert_sorted(&mem);
        let mut it = mem.iter();
        it.seek_to_first();
        // a@2 (deletion, newer) precedes a@1, then b@3.
        assert_eq!(user_key(it.key()), b"a");
        assert_eq!(parse_trailer(it.key()), (2, ValueType::Deletion));
        it.next();
        assert_eq!(parse_trailer(it.key()), (1, ValueType::Value));
        it.next();
        assert_eq!(user_key(it.key()), b"b");
        it.next();
        assert!(!it.valid());
    }

    #[test]
    fn approximate_bytes_grows() {
        let mut mem = MemTable::new(1);
        let before = mem.approximate_bytes();
        mem.add(1, ValueType::Value, b"key", &vec![0u8; 1000]);
        assert!(mem.approximate_bytes() >= before + 1000);
        assert_eq!(mem.len(), 1);
        assert!(!mem.is_empty());
    }
}
