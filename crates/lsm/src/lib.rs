//! # ldc-lsm — a LevelDB-class LSM-tree engine
//!
//! A from-scratch reproduction of the LevelDB architecture the LDC paper
//! (ICDE 2019) modifies: skiplist memtable, write-ahead log, leveled
//! SSTables with prefix-compressed blocks and SSTable-level Bloom filters,
//! a versioned manifest, and a pluggable compaction policy.
//!
//! The engine natively understands the two *metadata* primitives LDC needs —
//! **frozen files** and **slice links** (see [`version`]) — and exposes the
//! execution of `Link` / `LdcMerge` tasks alongside classic merges; the
//! baseline [`compaction::UdcPolicy`] never uses them, so the baseline is
//! exactly upper-level driven LevelDB compaction. The LDC policy itself
//! lives in the `ldc-core` crate.
//!
//! All I/O goes through [`ldc_ssd::StorageBackend`], so every run is charged
//! to the simulated SSD's virtual clock and traffic counters.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backup;
pub mod batch;
pub mod block;
pub mod cache;
pub(crate) mod commit;
pub mod compaction;
pub mod crc32c;
pub mod db;
pub mod encoding;
pub mod error;
pub mod filter;
pub mod iterator;
pub mod memtable;
pub mod options;
pub mod repair;
pub mod retry;
pub mod scheduler;
pub mod scrub;
pub mod skiplist;
pub mod table;
pub mod types;
pub mod version;
pub mod wal;

pub use backup::{
    backup_prefix, checkpoint_complete, checkpoint_prefix, restore_backup, restore_checkpoint,
    CheckpointReport, RestoreReport,
};
pub use batch::{BatchOp, WriteBatch};
pub use cache::CacheCounters;
pub use db::{Db, DbStats, PinnedValue, QuarantinedFile, RecoverySummary, Snapshot};
pub use error::{CorruptionInfo, Error, Result};
pub use options::{CorruptionPolicy, Options};
pub use repair::{repair_db, repair_db_with_sink, RepairReport};
pub use retry::RetryStorage;
pub use scrub::ScrubReport;
pub use types::{KeyRange, SequenceNumber, ValueType};
