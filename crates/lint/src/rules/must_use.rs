//! `must_use_result` — discarded I/O results in the storage tiers.
//!
//! `let _ = fallible_io()` silently swallows a `Result` that, in the ssd
//! and lsm crates, almost always carries a disk-corruption or crash-
//! recovery signal. The rule finds `let _ =` statements whose trailing
//! call resolves (via the workspace symbol table) to a function returning
//! a `Result`, and demands either real handling or an explicit
//! `// ldc-lint: allow(must_use_result) — reason` acknowledging why the
//! error is droppable at that site.
//!
//! Only the *outermost* call of the discarded expression is considered
//! (`let _ = retry(|| write(..))` resolves `retry`, not `write`), and
//! unresolvable names (std, trait objects, ambiguous) are skipped —
//! missing a site is better than nagging about `Sender::send`.

use crate::diag::Diagnostic;
use crate::graph::Workspace;
use crate::lexer::SourceView;

pub const RULE: &str = "must_use_result";

/// Crates whose I/O results must not be silently discarded.
const SCOPED_CRATES: &[&str] = &["ssd", "lsm"];

pub fn in_scope(path: &str) -> bool {
    SCOPED_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/")))
}

/// `files` must be the slice the workspace was built from.
pub fn check(ws: &Workspace, files: &[(String, SourceView)]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (path, view) in files {
        if !in_scope(path) {
            continue;
        }
        let code = &view.code;
        let bytes = code.as_bytes();
        for at in crate::lexer::token_positions(code, "let") {
            // `let _ =` with exactly `_` as the pattern.
            let mut i = at + 3;
            while bytes.get(i).is_some_and(|b| b.is_ascii_whitespace()) {
                i += 1;
            }
            if bytes.get(i) != Some(&b'_') {
                continue;
            }
            i += 1;
            while bytes.get(i).is_some_and(|b| b.is_ascii_whitespace()) {
                i += 1;
            }
            if bytes.get(i) != Some(&b'=') || bytes.get(i + 1) == Some(&b'=') {
                continue;
            }
            let line = view.line_of(at);
            if view.is_test_line(line) || view.is_suppressed(line, RULE) {
                continue;
            }
            let rhs_end = statement_end(bytes, i + 1);
            let rhs = &code[i + 1..rhs_end];
            let Some(name) = outermost_call(rhs) else {
                continue;
            };
            let candidates = ws.named(&name);
            if candidates.is_empty() {
                continue; // outside the workspace
            }
            let all_result = candidates
                .iter()
                .all(|&id| ws.item(id).ret.contains("Result"));
            if !all_result {
                continue;
            }
            diags.push(Diagnostic::error(
                path,
                line,
                RULE,
                format!("`let _ =` discards the `Result` returned by `{name}`"),
                "handle or propagate the error; if dropping it is deliberate, \
                 annotate with `// ldc-lint: allow(must_use_result) — reason`",
            ));
        }
    }
    diags
}

/// Name of the last top-level `ident(` call in the expression — the
/// outermost call producing the discarded value. Macros (`name!(..)`)
/// and nested (parenthesised) calls don't count.
fn outermost_call(expr: &str) -> Option<String> {
    let bytes = expr.as_bytes();
    let mut depth = 0i64;
    let mut last = None;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'(' | b'[' | b'{' => {
                depth += 1;
                i += 1;
            }
            b')' | b']' | b'}' => {
                depth -= 1;
                i += 1;
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                if depth == 0
                    && bytes.get(i) == Some(&b'(')
                    && bytes.get(start.wrapping_sub(1)) != Some(&b'!')
                {
                    last = Some(expr[start..i].to_string());
                }
            }
            _ => i += 1,
        }
    }
    last
}

/// Offset of the statement-terminating `;` at nesting depth zero.
fn statement_end(bytes: &[u8], from: usize) -> usize {
    let mut depth = 0i64;
    let mut i = from;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b';' if depth <= 0 => return i,
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let files = vec![("crates/lsm/src/x.rs".to_string(), SourceView::new(src))];
        let ws = Workspace::build(&files);
        check(&ws, &files)
    }

    #[test]
    fn discarded_result_is_flagged() {
        let diags = run("fn io() -> Result<(), E> { Ok(()) }\nfn caller() { let _ = io(); }\n");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("`io`"), "{diags:?}");
    }

    #[test]
    fn non_result_and_unknown_calls_are_ignored() {
        let diags = run(
            "fn pure() -> u64 { 1 }\n\
             fn caller(tx: &Sender<u8>) {\n    let _ = pure();\n    let _ = tx.send(1);\n    let _ = writeln!(f, \"x\");\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn allow_comment_and_tests_are_exempt() {
        let diags = run(
            "fn io() -> Result<(), E> { Ok(()) }\n\
             fn caller() {\n    // ldc-lint: allow(must_use_result) — best-effort cleanup\n    let _ = io();\n}\n\
             #[cfg(test)]\nmod tests {\n    fn t() { let _ = super::io(); }\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn outermost_call_wins_over_inner() {
        let diags = run(
            "fn io() -> Result<(), E> { Ok(()) }\nfn wrap(r: Result<(), E>) -> u64 { 0 }\n\
             fn caller() { let _ = wrap(io()); }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
