//! Internal iterators and k-way merging.
//!
//! Everything below the user API iterates *internal* entries: `(internal
//! key, value)` pairs including every version and tombstone, ordered by
//! [`compare_internal_keys`]. A [`MergingIterator`] combines children from
//! the memtable, Level-0 tables, per-level file chains, and LDC slice
//! ranges; the user-visible collapse (visibility, shadowing, tombstones)
//! happens in `db`.

use crate::error::Result;
use crate::memtable::MemTableIter;
use crate::table::TableIter;
use crate::types::compare_internal_keys;

/// Common interface over internal-entry cursors.
pub trait InternalIterator {
    /// Whether positioned at an entry.
    fn valid(&self) -> bool;
    /// Positions at the first entry.
    fn seek_to_first(&mut self);
    /// Positions at the first entry with internal key >= `target`.
    fn seek(&mut self, target: &[u8]);
    /// Advances by one entry.
    fn next(&mut self);
    /// Current internal key (valid only when `valid()`).
    fn key(&self) -> &[u8];
    /// Current value.
    fn value(&self) -> &[u8];
    /// First error encountered, if any.
    fn status(&self) -> Result<()> {
        Ok(())
    }
}

impl InternalIterator for MemTableIter<'_> {
    fn valid(&self) -> bool {
        MemTableIter::valid(self)
    }
    fn seek_to_first(&mut self) {
        MemTableIter::seek_to_first(self)
    }
    fn seek(&mut self, target: &[u8]) {
        MemTableIter::seek(self, target)
    }
    fn next(&mut self) {
        MemTableIter::next(self)
    }
    fn key(&self) -> &[u8] {
        MemTableIter::key(self)
    }
    fn value(&self) -> &[u8] {
        MemTableIter::value(self)
    }
}

impl InternalIterator for TableIter {
    fn valid(&self) -> bool {
        TableIter::valid(self)
    }
    fn seek_to_first(&mut self) {
        TableIter::seek_to_first(self)
    }
    fn seek(&mut self, target: &[u8]) {
        TableIter::seek(self, target)
    }
    fn next(&mut self) {
        TableIter::next(self)
    }
    fn key(&self) -> &[u8] {
        TableIter::key(self)
    }
    fn value(&self) -> &[u8] {
        TableIter::value(self)
    }
    fn status(&self) -> Result<()> {
        TableIter::status(self)
    }
}

/// An in-memory iterator over pre-sorted `(internal key, value)` pairs.
///
/// Used by compaction tests and as a cheap adapter in experiments.
pub struct VecIterator {
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    pos: usize,
    positioned: bool,
}

impl VecIterator {
    /// Wraps `entries`, which must already be sorted by internal key.
    pub fn new(entries: Vec<(Vec<u8>, Vec<u8>)>) -> Self {
        debug_assert!(entries
            .windows(2)
            .all(|w| compare_internal_keys(&w[0].0, &w[1].0).is_lt()));
        Self {
            entries,
            pos: 0,
            positioned: false,
        }
    }
}

impl InternalIterator for VecIterator {
    fn valid(&self) -> bool {
        self.positioned && self.pos < self.entries.len()
    }
    fn seek_to_first(&mut self) {
        self.pos = 0;
        self.positioned = true;
    }
    fn seek(&mut self, target: &[u8]) {
        self.pos = self
            .entries
            .partition_point(|(k, _)| compare_internal_keys(k, target).is_lt());
        self.positioned = true;
    }
    fn next(&mut self) {
        debug_assert!(self.valid());
        self.pos += 1;
    }
    fn key(&self) -> &[u8] {
        &self.entries[self.pos].0
    }
    fn value(&self) -> &[u8] {
        &self.entries[self.pos].1
    }
}

/// K-way merge over child iterators.
///
/// Children may contain the same user key at different sequences (or even
/// byte-identical internal keys from pathological inputs); merge order is by
/// internal key with child index as the tiebreak, so output is
/// deterministic. The child count is small (a handful of levels plus L0
/// files plus slices), so a linear minimum scan beats a heap in practice.
pub struct MergingIterator<'a> {
    children: Vec<Box<dyn InternalIterator + 'a>>,
    current: Option<usize>,
}

impl<'a> MergingIterator<'a> {
    /// Builds a merge over `children` (unpositioned).
    pub fn new(children: Vec<Box<dyn InternalIterator + 'a>>) -> Self {
        Self {
            children,
            current: None,
        }
    }

    fn find_smallest(&mut self) {
        let mut smallest: Option<usize> = None;
        for (i, child) in self.children.iter().enumerate() {
            if !child.valid() {
                continue;
            }
            smallest = match smallest {
                None => Some(i),
                Some(s) => {
                    if compare_internal_keys(child.key(), self.children[s].key()).is_lt() {
                        Some(i)
                    } else {
                        Some(s)
                    }
                }
            };
        }
        self.current = smallest;
    }
}

impl InternalIterator for MergingIterator<'_> {
    fn valid(&self) -> bool {
        self.current.is_some()
    }

    fn seek_to_first(&mut self) {
        for child in &mut self.children {
            child.seek_to_first();
        }
        self.find_smallest();
    }

    fn seek(&mut self, target: &[u8]) {
        for child in &mut self.children {
            child.seek(target);
        }
        self.find_smallest();
    }

    fn next(&mut self) {
        let cur = self.current.expect("next on invalid merging iterator");
        self.children[cur].next();
        self.find_smallest();
    }

    fn key(&self) -> &[u8] {
        self.children[self.current.expect("valid")].key()
    }

    fn value(&self) -> &[u8] {
        self.children[self.current.expect("valid")].value()
    }

    fn status(&self) -> Result<()> {
        for child in &self.children {
            child.status()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{encode_internal_key, user_key, ValueType};

    fn ik(key: &[u8], seq: u64) -> Vec<u8> {
        encode_internal_key(key, seq, ValueType::Value)
    }

    fn entries(keys: &[(&[u8], u64)]) -> Vec<(Vec<u8>, Vec<u8>)> {
        keys.iter()
            .map(|(k, s)| {
                (
                    ik(k, *s),
                    format!("{}@{s}", String::from_utf8_lossy(k)).into_bytes(),
                )
            })
            .collect()
    }

    #[test]
    fn vec_iterator_seeks() {
        let mut it = VecIterator::new(entries(&[(b"a", 1), (b"c", 1), (b"e", 1)]));
        it.seek_to_first();
        assert_eq!(user_key(it.key()), b"a");
        it.seek(&ik(b"b", 100));
        assert_eq!(user_key(it.key()), b"c");
        it.seek(&ik(b"z", 100));
        assert!(!it.valid());
    }

    #[test]
    fn merge_interleaves_sorted_children() {
        let a = VecIterator::new(entries(&[(b"a", 1), (b"d", 1), (b"g", 1)]));
        let b = VecIterator::new(entries(&[(b"b", 1), (b"e", 1)]));
        let c = VecIterator::new(entries(&[(b"c", 1), (b"f", 1), (b"h", 1)]));
        let mut m = MergingIterator::new(vec![Box::new(a), Box::new(b), Box::new(c)]);
        m.seek_to_first();
        let mut seen = Vec::new();
        while m.valid() {
            seen.push(user_key(m.key()).to_vec());
            m.next();
        }
        let expect: Vec<Vec<u8>> = [b"a", b"b", b"c", b"d", b"e", b"f", b"g", b"h"]
            .iter()
            .map(|k| k.to_vec())
            .collect();
        assert_eq!(seen, expect);
        m.status().unwrap();
    }

    #[test]
    fn merge_orders_same_user_key_by_sequence() {
        // Newer versions (higher seq) must come out first.
        let newer = VecIterator::new(entries(&[(b"k", 9)]));
        let older = VecIterator::new(entries(&[(b"k", 3)]));
        let mut m = MergingIterator::new(vec![Box::new(older), Box::new(newer)]);
        m.seek_to_first();
        assert_eq!(m.value(), b"k@9");
        m.next();
        assert_eq!(m.value(), b"k@3");
        m.next();
        assert!(!m.valid());
    }

    #[test]
    fn merge_seek_positions_all_children() {
        let a = VecIterator::new(entries(&[(b"a", 1), (b"m", 1)]));
        let b = VecIterator::new(entries(&[(b"c", 1), (b"x", 1)]));
        let mut m = MergingIterator::new(vec![Box::new(a), Box::new(b)]);
        m.seek(&ik(b"d", 100));
        assert_eq!(user_key(m.key()), b"m");
        m.next();
        assert_eq!(user_key(m.key()), b"x");
        m.next();
        assert!(!m.valid());
    }

    #[test]
    fn merge_with_empty_children() {
        let a = VecIterator::new(Vec::new());
        let b = VecIterator::new(entries(&[(b"only", 1)]));
        let c = VecIterator::new(Vec::new());
        let mut m = MergingIterator::new(vec![Box::new(a), Box::new(b), Box::new(c)]);
        m.seek_to_first();
        assert_eq!(user_key(m.key()), b"only");
        m.next();
        assert!(!m.valid());
    }

    #[test]
    fn merge_of_nothing_is_invalid() {
        let mut m = MergingIterator::new(Vec::new());
        m.seek_to_first();
        assert!(!m.valid());
    }
}
