//! Declarative fault schedules.
//!
//! A [`FaultPlan`] is the complete description of what a
//! [`FaultStorage`](crate::FaultStorage) will do to a run: every injected
//! fault derives deterministically from the plan's seed and the sequence
//! of storage operations the engine issues. Printing the plan (its
//! `Display` impl) is therefore a full replay recipe — the same plan over
//! the same workload reproduces the same faults, byte for byte.

use std::fmt;

/// Which file family a bit flip targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitFlipTarget {
    /// Write-ahead logs (`NNNNNN.log`).
    Wal,
    /// Sorted tables (`NNNNNN.sst`).
    Sstable,
    /// Version manifests (`MANIFEST-NNNNNN`).
    Manifest,
}

impl BitFlipTarget {
    /// Whether `name` belongs to this family.
    pub fn matches(&self, name: &str) -> bool {
        match self {
            BitFlipTarget::Wal => name.ends_with(".log"),
            BitFlipTarget::Sstable => name.ends_with(".sst"),
            BitFlipTarget::Manifest => name.starts_with("MANIFEST-"),
        }
    }

    /// Stable label for logs and reports.
    pub fn label(&self) -> &'static str {
        match self {
            BitFlipTarget::Wal => "wal",
            BitFlipTarget::Sstable => "sstable",
            BitFlipTarget::Manifest => "manifest",
        }
    }
}

/// A deterministic fault schedule for one storage incarnation.
///
/// Power-loss semantics at the crash point: everything up to each file's
/// last `sync` survives; sealed files (`write_file` outputs) survive in
/// full or not at all; un-synced append tails are discarded — or, with
/// [`torn_writes`](FaultPlan::torn_writes), cut at a seed-chosen byte.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seeds every random choice the plan makes.
    pub seed: u64,
    /// Power loss fires on the Nth mutating storage operation (1-based:
    /// `Some(1)` kills the very first write). `None` never crashes.
    pub crash_after_ops: Option<u64>,
    /// Allow un-synced bytes to partially survive the crash, torn at byte
    /// granularity (models a sector-grain partial page-cache flush).
    pub torn_writes: bool,
    /// Probability that a mutating operation fails with an injected
    /// [`SsdError::Io`](ldc_ssd::SsdError::Io) instead of running.
    pub io_error_prob: f64,
    /// Each file's first N reads fail with
    /// [`SsdError::TransientIo`](ldc_ssd::SsdError::TransientIo) and then
    /// heal — the flash "controller busy / ECC retry" pattern the engine's
    /// retry budget is sized for. Deterministic: the Nth read of a given
    /// file always behaves the same.
    pub transient_read_failures: u32,
}

impl FaultPlan {
    /// A benign plan: nothing is injected until fields are set.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            crash_after_ops: None,
            torn_writes: false,
            io_error_prob: 0.0,
            transient_read_failures: 0,
        }
    }

    /// Power loss on the `op`th mutating storage operation, with torn
    /// un-synced tails (the harness's crash-sweep plan).
    pub fn crash_at(seed: u64, op: u64) -> Self {
        Self {
            crash_after_ops: Some(op),
            torn_writes: true,
            ..Self::new(seed)
        }
    }

    /// Fail each mutating operation with probability `prob`.
    pub fn io_errors(seed: u64, prob: f64) -> Self {
        Self {
            io_error_prob: prob,
            ..Self::new(seed)
        }
    }

    /// Fail each file's first `failures` reads transiently, then heal.
    pub fn transient_reads(seed: u64, failures: u32) -> Self {
        Self {
            transient_read_failures: failures,
            ..Self::new(seed)
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FaultPlan {{ seed: {}, crash_after_ops: ", self.seed)?;
        match self.crash_after_ops {
            Some(op) => write!(f, "Some({op})")?,
            None => write!(f, "None")?,
        }
        write!(
            f,
            ", torn_writes: {}, io_error_prob: {}, transient_read_failures: {} }}",
            self.torn_writes, self.io_error_prob, self.transient_read_failures
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_matching() {
        assert!(BitFlipTarget::Wal.matches("000003.log"));
        assert!(!BitFlipTarget::Wal.matches("000003.log.quarantined"));
        assert!(BitFlipTarget::Sstable.matches("000007.sst"));
        assert!(BitFlipTarget::Manifest.matches("MANIFEST-000002"));
        assert!(!BitFlipTarget::Manifest.matches("CURRENT"));
        assert_eq!(BitFlipTarget::Sstable.label(), "sstable");
    }

    #[test]
    fn display_is_a_replay_recipe() {
        let plan = FaultPlan::crash_at(42, 17);
        let text = plan.to_string();
        assert!(text.contains("seed: 42"), "{text}");
        assert!(text.contains("Some(17)"), "{text}");
        assert!(text.contains("torn_writes: true"), "{text}");
    }
}
