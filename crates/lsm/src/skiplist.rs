//! An arena-backed skiplist keyed by internal keys.
//!
//! This is the memtable's core ordered structure. It is insert-only (the
//! memtable never deletes in place; tombstones are ordinary entries) which
//! lets us use a simple index-based arena with no `unsafe`.

use std::cmp::Ordering;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::types::compare_internal_keys;

const MAX_HEIGHT: usize = 12;
const BRANCHING: u32 = 4;
/// Sentinel "null pointer" in the arena.
const NIL: u32 = u32::MAX;

struct Node {
    key: Vec<u8>,
    value: Vec<u8>,
    /// next[h] = arena index of the successor at height h.
    next: Vec<u32>,
}

/// Insert-only skiplist ordered by [`compare_internal_keys`].
pub struct SkipList {
    /// `arena[0]` is the head sentinel (empty key, full height).
    arena: Vec<Node>,
    height: usize,
    rng: SmallRng,
    len: usize,
    approximate_bytes: usize,
}

impl SkipList {
    /// Creates an empty list. `seed` keeps runs deterministic.
    pub fn new(seed: u64) -> Self {
        let head = Node {
            key: Vec::new(),
            value: Vec::new(),
            next: vec![NIL; MAX_HEIGHT],
        };
        Self {
            arena: vec![head],
            height: 1,
            rng: SmallRng::seed_from_u64(seed),
            len: 0,
            approximate_bytes: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Rough memory footprint of stored keys+values plus per-node overhead;
    /// used for the memtable flush threshold.
    pub fn approximate_bytes(&self) -> usize {
        self.approximate_bytes
    }

    fn random_height(&mut self) -> usize {
        let mut h = 1;
        while h < MAX_HEIGHT && self.rng.gen_ratio(1, BRANCHING) {
            h += 1;
        }
        h
    }

    fn key_is_after_node(&self, key: &[u8], node: u32) -> bool {
        node != NIL && compare_internal_keys(&self.arena[node as usize].key, key) == Ordering::Less
    }

    /// Finds the node >= `key`, filling `prev` with the predecessor at every
    /// height. Returns the arena index or `NIL`.
    fn find_greater_or_equal(&self, key: &[u8], mut prev: Option<&mut [u32; MAX_HEIGHT]>) -> u32 {
        let mut x = 0u32; // head
        let mut level = self.height - 1;
        loop {
            let next = self.arena[x as usize].next[level];
            if self.key_is_after_node(key, next) {
                x = next;
            } else {
                if let Some(prev) = prev.as_deref_mut() {
                    prev[level] = x;
                }
                if level == 0 {
                    return next;
                }
                level -= 1;
            }
        }
    }

    /// Inserts `key -> value`. Keys must be unique (internal keys carry a
    /// unique sequence number, so the memtable guarantees this).
    pub fn insert(&mut self, key: Vec<u8>, value: Vec<u8>) {
        let mut prev = [NIL; MAX_HEIGHT];
        let found = self.find_greater_or_equal(&key, Some(&mut prev));
        debug_assert!(
            found == NIL
                || compare_internal_keys(&self.arena[found as usize].key, &key) != Ordering::Equal,
            "duplicate internal key inserted"
        );
        let height = self.random_height();
        if height > self.height {
            for p in prev.iter_mut().take(height).skip(self.height) {
                *p = 0; // head
            }
            self.height = height;
        }
        self.approximate_bytes += key.len() + value.len() + 32;
        let idx = self.arena.len() as u32;
        let mut next = vec![NIL; height];
        for (h, slot) in next.iter_mut().enumerate() {
            *slot = self.arena[prev[h] as usize].next[h];
        }
        self.arena.push(Node { key, value, next });
        // Indexing both `prev` and the per-node towers by height is the
        // clearest form here.
        #[allow(clippy::needless_range_loop)]
        for h in 0..height {
            self.arena[prev[h] as usize].next[h] = idx;
        }
        self.len += 1;
    }

    /// Iterator positioned before the first entry.
    pub fn iter(&self) -> SkipListIter<'_> {
        SkipListIter {
            list: self,
            node: NIL,
        }
    }

    // Raw cursor surface: arena indices instead of a borrowing iterator, so
    // a caller that owns a lock guard on the list (the memtable) can keep a
    // cursor across guard-mediated accesses. `u32::MAX` is the "invalid"
    // cursor, matching the arena NIL sentinel.

    /// Arena index of the first entry, or `u32::MAX` when empty.
    pub fn first(&self) -> u32 {
        self.arena[0].next[0]
    }

    /// Arena index of the first entry with key >= `target`, or `u32::MAX`.
    pub fn lower_bound(&self, target: &[u8]) -> u32 {
        self.find_greater_or_equal(target, None)
    }

    /// Arena index of the entry after `node` (which must be valid).
    pub fn successor(&self, node: u32) -> u32 {
        debug_assert!(node != NIL);
        self.arena[node as usize].next[0]
    }

    /// Internal key stored at `node` (which must be valid).
    pub fn node_key(&self, node: u32) -> &[u8] {
        debug_assert!(node != NIL);
        &self.arena[node as usize].key
    }

    /// Value stored at `node` (which must be valid).
    pub fn node_value(&self, node: u32) -> &[u8] {
        debug_assert!(node != NIL);
        &self.arena[node as usize].value
    }
}

/// Cursor over a [`SkipList`].
pub struct SkipListIter<'a> {
    list: &'a SkipList,
    node: u32,
}

impl<'a> SkipListIter<'a> {
    /// Whether the cursor points at an entry.
    pub fn valid(&self) -> bool {
        self.node != NIL
    }

    /// Positions at the first entry.
    pub fn seek_to_first(&mut self) {
        self.node = self.list.arena[0].next[0];
    }

    /// Positions at the first entry with key >= `target` (internal key).
    pub fn seek(&mut self, target: &[u8]) {
        self.node = self.list.find_greater_or_equal(target, None);
    }

    /// Advances to the next entry.
    pub fn next(&mut self) {
        debug_assert!(self.valid());
        self.node = self.list.arena[self.node as usize].next[0];
    }

    /// Current internal key.
    pub fn key(&self) -> &'a [u8] {
        debug_assert!(self.valid());
        &self.list.arena[self.node as usize].key
    }

    /// Current value.
    pub fn value(&self) -> &'a [u8] {
        debug_assert!(self.valid());
        &self.list.arena[self.node as usize].value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{encode_internal_key, ValueType};

    fn ik(key: &[u8], seq: u64) -> Vec<u8> {
        encode_internal_key(key, seq, ValueType::Value)
    }

    #[test]
    fn empty_list() {
        let list = SkipList::new(7);
        assert!(list.is_empty());
        assert_eq!(list.len(), 0);
        let mut it = list.iter();
        it.seek_to_first();
        assert!(!it.valid());
        it.seek(&ik(b"x", 1));
        assert!(!it.valid());
    }

    #[test]
    fn insert_and_scan_in_order() {
        let mut list = SkipList::new(7);
        // Insert in shuffled order; iteration must be sorted.
        for (i, k) in [b"d", b"a", b"c", b"e", b"b"].iter().enumerate() {
            list.insert(ik(*k, i as u64 + 1), k.to_vec());
        }
        assert_eq!(list.len(), 5);
        let mut it = list.iter();
        it.seek_to_first();
        let mut seen = Vec::new();
        while it.valid() {
            seen.push(crate::types::user_key(it.key()).to_vec());
            it.next();
        }
        assert_eq!(
            seen,
            vec![
                b"a".to_vec(),
                b"b".to_vec(),
                b"c".to_vec(),
                b"d".to_vec(),
                b"e".to_vec()
            ]
        );
    }

    #[test]
    fn same_user_key_orders_by_descending_sequence() {
        let mut list = SkipList::new(7);
        list.insert(ik(b"k", 1), b"old".to_vec());
        list.insert(ik(b"k", 9), b"new".to_vec());
        list.insert(ik(b"k", 5), b"mid".to_vec());
        let mut it = list.iter();
        it.seek_to_first();
        assert_eq!(it.value(), b"new");
        it.next();
        assert_eq!(it.value(), b"mid");
        it.next();
        assert_eq!(it.value(), b"old");
    }

    #[test]
    fn seek_finds_first_at_or_after() {
        let mut list = SkipList::new(7);
        for k in [b"b", b"d", b"f"] {
            list.insert(ik(k, 1), vec![]);
        }
        let mut it = list.iter();
        // Seek with a high sequence number: positions at (b,1) because higher
        // seq sorts before lower seq for the same user key.
        it.seek(&ik(b"b", 100));
        assert!(it.valid());
        assert_eq!(crate::types::user_key(it.key()), b"b");
        it.seek(&ik(b"c", 100));
        assert_eq!(crate::types::user_key(it.key()), b"d");
        it.seek(&ik(b"g", 100));
        assert!(!it.valid());
    }

    #[test]
    fn large_insert_stays_sorted() {
        let mut list = SkipList::new(42);
        let mut keys: Vec<u64> = (0..2000).collect();
        // Deterministic shuffle via multiplication by an odd constant.
        keys.sort_by_key(|k| k.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        for (seq, k) in keys.iter().enumerate() {
            list.insert(ik(&k.to_be_bytes(), seq as u64 + 1), vec![0u8; 8]);
        }
        assert_eq!(list.len(), 2000);
        let mut it = list.iter();
        it.seek_to_first();
        let mut prev: Option<Vec<u8>> = None;
        let mut count = 0;
        while it.valid() {
            if let Some(p) = &prev {
                assert_eq!(
                    compare_internal_keys(p, it.key()),
                    Ordering::Less,
                    "out of order at {count}"
                );
            }
            prev = Some(it.key().to_vec());
            count += 1;
            it.next();
        }
        assert_eq!(count, 2000);
        assert!(list.approximate_bytes() > 2000 * 16);
    }
}
