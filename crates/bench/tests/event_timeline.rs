//! Fig 1's causal claim, as a test: write-latency spikes coincide with
//! compaction activity. We regenerate fig01's manual write-heavy loop at
//! test scale, find the spikiest latency bucket, and assert a merge event
//! (UdcMerge / LdcMerge) overlaps that window — the annotation the figure
//! binary prints is therefore guaranteed to be non-vacuous.

use std::sync::Arc;

use ldc_bench::prelude::*;
use ldc_workload::KvInterface;

const BUCKET_NS: u64 = 10_000_000; // 10 ms (test scale: smaller memtables)
const OPS: u64 = 20_000;

fn kv(i: u64) -> (Vec<u8>, Vec<u8>) {
    let h = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (
        format!("key{h:016x}").into_bytes(),
        format!("value-{i:08}-{}", "x".repeat(64)).into_bytes(),
    )
}

/// Drives fig01's 70/30 write-heavy mix, returning the recorded events and
/// the spikiest bucket's `[start, end)` window of virtual time.
fn spike_window(system: System) -> (Vec<Event>, u64, u64) {
    let sink = Arc::new(RingBufferSink::new(1 << 20));
    let mut builder = LdcDb::builder()
        .options(Options::small_for_tests())
        .event_sink(sink.clone());
    if system == System::Udc {
        builder = builder.udc_baseline();
    }
    let db = builder.build().unwrap();
    let clock = db.device().clock().clone();
    let mut adapter = DbAdapter::new(db);

    let window_start = clock.now();
    let mut buckets: Vec<(u128, u64)> = Vec::new(); // (latency sum, writes)
    for i in 0..OPS {
        let (k, v) = kv(i % 4096);
        let t0 = clock.now();
        if i % 10 < 7 {
            adapter.insert(&k, &v).unwrap();
            let bucket = ((clock.now() - window_start) / BUCKET_NS) as usize;
            if buckets.len() <= bucket {
                buckets.resize(bucket + 1, (0, 0));
            }
            buckets[bucket].0 += u128::from(clock.now() - t0);
            buckets[bucket].1 += 1;
        } else {
            adapter.get(&k).unwrap();
        }
    }

    let spike = buckets
        .iter()
        .enumerate()
        .filter(|(_, (_, n))| *n > 0)
        .max_by(|(_, a), (_, b)| (a.0 as f64 / a.1 as f64).total_cmp(&(b.0 as f64 / b.1 as f64)))
        .map(|(i, _)| i)
        .expect("no write buckets");
    let lo = window_start + spike as u64 * BUCKET_NS;
    (sink.events(), lo, lo + BUCKET_NS)
}

#[test]
fn udc_spike_window_overlaps_a_merge_event() {
    let (events, lo, hi) = spike_window(System::Udc);
    assert!(
        events
            .iter()
            .any(|e| e.kind == EventKind::UdcMerge && e.overlaps(lo, hi)),
        "no UdcMerge overlaps the spike window [{lo}, {hi})"
    );
}

#[test]
fn ldc_spike_window_overlaps_a_merge_event() {
    let (events, lo, hi) = spike_window(System::Ldc);
    assert!(
        events
            .iter()
            .any(|e| e.kind == EventKind::LdcMerge && e.overlaps(lo, hi)),
        "no LdcMerge overlaps the spike window [{lo}, {hi})"
    );
}
