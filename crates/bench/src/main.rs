//! `ldc-bench` — multi-tool entry point.
//!
//! The figure/table reproductions live in `src/bin/` (one binary each;
//! `cargo run -p ldc-bench --bin fig08_tail_latency`). This default binary
//! hosts operational subcommands that exercise the engine end to end:
//!
//! ```text
//! cargo run -p ldc-bench -- repair --seed 7
//! ```
//!
//! `repair` drives the full degraded-mode pipeline on a fresh simulated
//! store: run a workload, flip one bit in the largest SSTable, scrub
//! (detect), quarantine (keep serving), `repair_db` (rebuild the manifest,
//! salvage WAL remnants), reopen, and verify every served value against
//! the model. It also proves the transient-read retry budget masks
//! heal-after-N read failures. Exits non-zero on any verification failure,
//! printing the `(seed, plan)` replay recipe.

use ldc_bench::cli::CommonArgs;
use ldc_chaos::{ChaosConfig, ChaosHarness};
use ldc_core::CompactionMode;
use ldc_core::LdcConfig;

fn usage() -> ! {
    eprintln!("usage: ldc-bench <subcommand> [flags]");
    eprintln!();
    eprintln!("subcommands:");
    eprintln!("  repair   degraded-mode pipeline: scrub -> quarantine -> repair -> verify");
    eprintln!();
    eprintln!("figure binaries live under --bin (e.g. --bin fig08_tail_latency)");
    std::process::exit(2);
}

fn run_repair(args: CommonArgs) -> Result<(), String> {
    let config = ChaosConfig {
        ops: args.ops,
        ..ChaosConfig::quick(args.seed, CompactionMode::Ldc(LdcConfig::default()))
    };
    let harness = ChaosHarness::new(config);

    println!("# degraded-mode pipeline (seed {})", args.seed);

    let transient = harness.run_transient_reads(2).map_err(|f| f.to_string())?;
    println!(
        "transient reads: {} injected failures masked by {} retries",
        transient.injected_failures, transient.retries_recorded
    );
    if transient.injected_failures > 0 && transient.retries_recorded == 0 {
        return Err("transient failures were injected but never retried".to_string());
    }

    let report = harness
        .run_scrub_quarantine_repair()
        .map_err(|f| f.to_string())?;
    println!(
        "bit flip: {} byte {} bit {}",
        report.file, report.offset, report.bit
    );
    if report.detected_at_open {
        println!("detection: reopen refused the corrupt store");
    } else {
        println!(
            "detection: scrub reported {} corruption(s), quarantined {} file(s)",
            report.scrub_corruptions, report.files_quarantined
        );
    }
    println!(
        "repair: kept {} table(s), salvaged {}, quarantined {}, thawed {} frozen, {} WAL record(s)",
        report.repair.tables_kept,
        report.repair.tables_salvaged,
        report.repair.tables_quarantined,
        report.repair.frozen_thawed,
        report.repair.wal_records_salvaged
    );
    println!(
        "verify: {} key(s) surviving, {} lost with the quarantined table",
        report.surviving_keys, report.lost_keys
    );
    if report.surviving_keys == 0 {
        return Err("repair lost every key".to_string());
    }
    println!("OK");
    Ok(())
}

fn main() {
    let mut args = std::env::args().skip(1);
    let sub = match args.next() {
        Some(s) => s,
        None => usage(),
    };
    match sub.as_str() {
        "repair" => {
            let common = CommonArgs::from_iter(400, args);
            if let Err(detail) = run_repair(common) {
                eprintln!("repair pipeline FAILED: {detail}");
                std::process::exit(1);
            }
        }
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown subcommand: {other}");
            usage();
        }
    }
}
