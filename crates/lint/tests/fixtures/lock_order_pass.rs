// Fixture (checked as crates/lsm/src/cache.rs): forward-order nesting,
// scoped guards, and explicit drops — nothing may be flagged.
struct C {
    inner: Mutex<u32>,
}

fn forward(c: &C, m: &Metrics) {
    let cache_guard = c.inner.lock();
    record(m); // leaf obs locks may be taken under engine locks
    drop(cache_guard);
}

fn scoped_reacquire(c: &C) {
    {
        let a = c.inner.lock();
        use_it(a);
    }
    let b = c.inner.lock();
    use_it(b);
}

fn dropped_reacquire(c: &C) {
    let a = c.inner.lock();
    drop(a);
    let b = c.inner.lock();
    use_it(b);
}
