//! Drives a key-value store through a [`WorkloadSpec`] and measures it in
//! virtual time.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ldc_ssd::VirtualClock;

use crate::distribution::Sampler;
use crate::histogram::Histogram;
use crate::spec::{ReadKind, WorkloadSpec};

/// The store interface the runner drives. Implemented by thin adapters in
/// the benchmark crate (and by an in-memory model in tests).
pub trait KvInterface {
    /// Inserts or overwrites a key.
    fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<(), String>;
    /// Point lookup.
    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, String>;
    /// Range scan; returns the number of entries touched.
    fn scan(&mut self, start: &[u8], limit: usize) -> Result<usize, String>;
}

/// Measured outcome of one workload run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Workload name.
    pub name: String,
    /// Measured operations.
    pub ops: u64,
    /// Virtual nanoseconds the measured window took.
    pub duration_nanos: u64,
    /// Latencies of all measured ops.
    pub overall: Histogram,
    /// Write-op latencies.
    pub writes: Histogram,
    /// Point-read latencies.
    pub reads: Histogram,
    /// Scan latencies.
    pub scans: Histogram,
    /// Mean latency (µs) and op count per virtual second — Fig 1's trace.
    pub per_second: Vec<SecondSample>,
}

/// One point of the per-second latency trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecondSample {
    /// Virtual second since the measured window started.
    pub second: u64,
    /// Mean operation latency within that second, microseconds.
    pub mean_latency_us: f64,
    /// Operations completed within that second.
    pub ops: u64,
}

impl RunReport {
    /// Operations per virtual second.
    pub fn throughput(&self) -> f64 {
        if self.duration_nanos == 0 {
            0.0
        } else {
            self.ops as f64 * 1e9 / self.duration_nanos as f64
        }
    }

    /// Mean latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        self.overall.mean() / 1_000.0
    }

    /// Percentile latency in microseconds.
    pub fn percentile_us(&self, p: f64) -> f64 {
        self.overall.percentile(p) as f64 / 1_000.0
    }
}

/// Executes only the (unmeasured) preload phase of `spec`: inserting the
/// first `spec.preload` keys at version 0. Returns the number inserted.
/// Harnesses that snapshot device counters should call this first, snapshot,
/// then call [`run_measured`].
pub fn preload_workload(spec: &WorkloadSpec, db: &mut impl KvInterface) -> Result<u64, String> {
    let codec = &spec.codec;
    for i in 0..spec.preload {
        db.insert(&codec.key(i), &codec.value(i, 0))?;
    }
    Ok(spec.preload)
}

/// Runs `spec` against `db`, measuring latencies on `clock` (the device's
/// virtual clock). The preload phase is executed but not measured.
pub fn run_workload(
    spec: &WorkloadSpec,
    db: &mut impl KvInterface,
    clock: &VirtualClock,
) -> Result<RunReport, String> {
    preload_workload(spec, db)?;
    run_measured(spec, db, clock)
}

/// Runs the measured window of `spec`, assuming [`preload_workload`] has
/// already populated the store.
pub fn run_measured(
    spec: &WorkloadSpec,
    db: &mut impl KvInterface,
    clock: &VirtualClock,
) -> Result<RunReport, String> {
    let codec = &spec.codec;
    let mut sampler = Sampler::new(spec.distribution.clone(), spec.seed);
    let mut op_rng = SmallRng::seed_from_u64(spec.seed ^ 0x00c0_ffee);
    let mut present = spec.preload;
    let mut version: u64 = 1;

    let mut report = RunReport {
        name: spec.name.clone(),
        ops: 0,
        duration_nanos: 0,
        overall: Histogram::new(),
        writes: Histogram::new(),
        reads: Histogram::new(),
        scans: Histogram::new(),
        per_second: Vec::new(),
    };
    let window_start = clock.now();
    let mut trace: Vec<(u128, u64)> = Vec::new(); // (sum latency ns, ops) per second

    for _ in 0..spec.ops {
        let is_write = spec.write_ratio > 0.0 && op_rng.gen_bool(spec.write_ratio.clamp(0.0, 1.0));
        let t0 = clock.now();
        if is_write {
            // Random insertion: new keys until the key space is full, then
            // distribution-chosen overwrites.
            let idx = if present < spec.key_space {
                let i = present;
                present += 1;
                i
            } else {
                sampler.sample(spec.key_space)
            };
            db.insert(&codec.key(idx), &codec.value(idx, version))?;
            version += 1;
        } else {
            let space = present.max(1);
            let idx = sampler.sample(space);
            match spec.read_kind {
                ReadKind::Point => {
                    db.get(&codec.key(idx))?;
                }
                ReadKind::Range => {
                    db.scan(&codec.key(idx), spec.scan_length)?;
                }
            }
        }
        let latency = clock.now() - t0;
        report.overall.record(latency);
        if is_write {
            report.writes.record(latency);
        } else if spec.read_kind == ReadKind::Point {
            report.reads.record(latency);
        } else {
            report.scans.record(latency);
        }
        let second = ((clock.now() - window_start) / 1_000_000_000) as usize;
        if trace.len() <= second {
            trace.resize(second + 1, (0, 0));
        }
        trace[second].0 += u128::from(latency);
        trace[second].1 += 1;
        report.ops += 1;
    }

    report.duration_nanos = clock.now() - window_start;
    report.per_second = trace
        .iter()
        .enumerate()
        .filter(|(_, (_, ops))| *ops > 0)
        .map(|(second, (sum, ops))| SecondSample {
            second: second as u64,
            mean_latency_us: *sum as f64 / (*ops as f64) / 1_000.0,
            ops: *ops,
        })
        .collect();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// In-memory model store that charges fixed virtual costs.
    struct ModelStore {
        map: BTreeMap<Vec<u8>, Vec<u8>>,
        clock: VirtualClock,
        write_cost: u64,
        read_cost: u64,
    }

    impl KvInterface for ModelStore {
        fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<(), String> {
            self.clock.advance(self.write_cost);
            self.map.insert(key.to_vec(), value.to_vec());
            Ok(())
        }
        fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, String> {
            self.clock.advance(self.read_cost);
            Ok(self.map.get(key).cloned())
        }
        fn scan(&mut self, start: &[u8], limit: usize) -> Result<usize, String> {
            self.clock.advance(self.read_cost * limit as u64 / 10);
            Ok(self.map.range(start.to_vec()..).take(limit).count())
        }
    }

    fn model(clock: &VirtualClock) -> ModelStore {
        ModelStore {
            map: BTreeMap::new(),
            clock: clock.clone(),
            write_cost: 25_000,
            read_cost: 60_000,
        }
    }

    #[test]
    fn runs_the_requested_number_of_ops() {
        let clock = VirtualClock::new();
        let mut db = model(&clock);
        let spec = WorkloadSpec::read_write_balanced(2000).with_key_space(500);
        let report = run_workload(&spec, &mut db, &clock).unwrap();
        assert_eq!(report.ops, 2000);
        assert_eq!(report.overall.count(), 2000);
        assert!(report.duration_nanos > 0);
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn mix_ratios_are_respected() {
        let clock = VirtualClock::new();
        let mut db = model(&clock);
        let spec = WorkloadSpec::write_heavy(10_000).with_key_space(1000);
        let report = run_workload(&spec, &mut db, &clock).unwrap();
        let write_frac = report.writes.count() as f64 / report.ops as f64;
        assert!(
            (0.67..0.73).contains(&write_frac),
            "write frac {write_frac}"
        );
        assert_eq!(report.scans.count(), 0);
    }

    #[test]
    fn scan_workloads_scan() {
        let clock = VirtualClock::new();
        let mut db = model(&clock);
        let spec = WorkloadSpec::scan_read_write_balanced(1000).with_key_space(500);
        let report = run_workload(&spec, &mut db, &clock).unwrap();
        assert!(report.scans.count() > 0);
        assert_eq!(report.reads.count(), 0);
    }

    #[test]
    fn read_only_preloads_so_reads_hit() {
        let clock = VirtualClock::new();
        let mut db = model(&clock);
        let spec = WorkloadSpec::read_only(500).with_key_space(200);
        let report = run_workload(&spec, &mut db, &clock).unwrap();
        assert_eq!(report.writes.count(), 0);
        assert_eq!(db.map.len(), 200, "preload must populate the store");
        assert_eq!(report.ops, 500);
    }

    #[test]
    fn preload_is_not_measured() {
        let clock = VirtualClock::new();
        let mut db = model(&clock);
        let spec = WorkloadSpec::read_only(100).with_key_space(1000);
        let report = run_workload(&spec, &mut db, &clock).unwrap();
        // 1000 preload inserts at 25us each are excluded; 100 reads at
        // 60us each are the measured window.
        assert_eq!(report.duration_nanos, 100 * 60_000);
        assert_eq!(report.overall.count(), 100);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let clock = VirtualClock::new();
            let mut db = model(&clock);
            let spec = WorkloadSpec::read_write_balanced(3000).with_key_space(700);
            let r = run_workload(&spec, &mut db, &clock).unwrap();
            (
                r.duration_nanos,
                r.writes.count(),
                r.overall.percentile(99.0),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn per_second_trace_accounts_every_op() {
        let clock = VirtualClock::new();
        let mut db = model(&clock);
        // 60us reads -> ~16.7k ops/s -> a 40k-op run spans ~2.4 seconds.
        let spec = WorkloadSpec::read_only(40_000).with_key_space(100);
        let report = run_workload(&spec, &mut db, &clock).unwrap();
        assert!(report.per_second.len() >= 2);
        let total: u64 = report.per_second.iter().map(|s| s.ops).sum();
        assert_eq!(total, report.ops);
        for s in &report.per_second {
            assert!(s.mean_latency_us > 0.0);
        }
    }

    #[test]
    fn report_latency_helpers() {
        let clock = VirtualClock::new();
        let mut db = model(&clock);
        let spec = WorkloadSpec::write_only(100);
        let report = run_workload(&spec, &mut db, &clock).unwrap();
        assert!((report.mean_latency_us() - 25.0).abs() < 2.0);
        assert!(report.percentile_us(99.0) >= 24.0);
    }
}
