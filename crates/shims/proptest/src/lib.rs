//! Offline drop-in subset of the `proptest` crate.
//!
//! Supports the workspace's property tests without network access:
//! deterministic per-test-name random generation, the `proptest!` /
//! `prop_assert*!` / `prop_assume!` / `prop_oneof!` macros, strategy
//! combinators (`prop_map`, tuples, ranges, `any`), and the collection /
//! option / sample strategy modules. **No shrinking**: a failing case
//! reports its case number and seed instead of a minimized input.

#![forbid(unsafe_code)]

pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (not panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Rejects the current case (it is regenerated, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Weighted (or unweighted) choice between strategies producing the
/// same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written by the caller, as with
/// real proptest) running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr)) => {};
    (@funcs ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(&config, stringify!($name), |rng| {
                $(let $pat = $crate::strategy::Strategy::gen_value(&($strat), rng);)+
                { $body }
                ::std::result::Result::Ok(())
            });
        }
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
