//! # ldc-chaos — deterministic fault injection for the LDC stack
//!
//! Storage is where key-value stores lose data, and crashes are where
//! they lose it quietly. This crate wraps any
//! [`StorageBackend`](ldc_ssd::StorageBackend) in a fault-injecting
//! decorator ([`FaultStorage`]) and drives the whole engine through
//! crash, corruption, and error scenarios with a verification harness
//! ([`ChaosHarness`]):
//!
//! * **Power loss** at any chosen mutating storage operation, with
//!   LevelDB-faithful durability semantics: synced bytes and sealed files
//!   survive; un-synced tails are discarded or torn at byte granularity.
//! * **Bit flips** in WALs, SSTables, and manifests, proving the CRC
//!   paths detect (or safely mask) the damage instead of serving garbage.
//! * **Injected I/O errors** with configurable probability, proving the
//!   engine fail-stops rather than corrupting its own logs.
//! * **Transient read failures** that heal after N attempts, proving the
//!   engine's bounded retry budget masks them completely.
//! * The full **degraded-mode pipeline** — scrub → quarantine → repair →
//!   verify — over a bit-flipped store.
//! * **Backup & replication crashes** — power loss mid-checkpoint,
//!   mid-ship, and mid-apply — proving a surviving backup restores (and a
//!   follower converges) to a state on the acknowledged-history prefix,
//!   and an incomplete checkpoint is refused rather than half-restored.
//!
//! Everything derives from a seed: a failing run is reproducible from the
//! `(seed, crash point)` pair its [`ChaosFailure`] prints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod harness;
mod plan;

pub use fault::{FaultStorage, PowerCycleReport};
pub use harness::{
    ApplyCrashReport, BackupCrashReport, BackupOpsProfile, BitFlipOutcome, BitFlipReport,
    ChaosConfig, ChaosFailure, ChaosHarness, CrashPointReport, IoErrorReport, ScrubRepairReport,
    TransientReadReport,
};
pub use plan::{BitFlipTarget, FaultPlan};
