//! End-to-end checks of the paper's quantitative *claims*, wired as tests
//! so regressions in any layer (policy, engine, device model) surface as
//! failures. These mirror the benchmark binaries at a smaller scale.

use ldc::workload::{run_workload, KvInterface, WorkloadSpec};
use ldc::{LdcDb, Options};

struct Adapter(LdcDb);

impl KvInterface for Adapter {
    fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<(), String> {
        self.0.put(key, value).map_err(|e| e.to_string())
    }
    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, String> {
        self.0.get(key).map_err(|e| e.to_string())
    }
    fn scan(&mut self, start: &[u8], limit: usize) -> Result<usize, String> {
        self.0
            .scan(start, limit)
            .map(|r| r.len())
            .map_err(|e| e.to_string())
    }
}

fn bench_options() -> Options {
    Options {
        memtable_bytes: 256 << 10,
        sstable_bytes: 256 << 10,
        l1_capacity_bytes: 1 << 20,
        ..Options::default()
    }
}

fn run(udc: bool, spec: &WorkloadSpec) -> Adapter {
    let mut builder = LdcDb::builder().options(bench_options());
    if udc {
        builder = builder.udc_baseline();
    }
    let db = builder.build().unwrap();
    let clock = db.device().clock().clone();
    let mut adapter = Adapter(db);
    run_workload(spec, &mut adapter, &clock).unwrap();
    adapter.0.drain_background();
    adapter
}

fn small_codec() -> ldc::workload::KeyCodec {
    ldc::workload::KeyCodec::new(16, 512)
}

/// §IV-D / Fig 10c: LDC saves roughly half the compaction I/O. The purest
/// signal is the write-only workload (mixed workloads at tiny scale spend
/// part of the saving on frozen-region GC; the fig10c binary reports the
/// full matrix).
#[test]
fn claim_compaction_io_halves() {
    let spec = WorkloadSpec::write_only(25_000).with_codec(small_codec());
    let udc = run(true, &spec);
    let ldc = run(false, &spec);
    let io = |a: &Adapter| {
        let s = a.0.device().io_stats();
        s.compaction_read_bytes() + s.compaction_write_bytes()
    };
    let (u, l) = (io(&udc), io(&ldc));
    assert!(
        (l as f64) < 0.7 * u as f64,
        "LDC compaction I/O {l} should be well under UDC {u}"
    );
}

/// Fig 10a: higher total throughput on write-containing mixes.
#[test]
fn claim_throughput_improves_on_writes() {
    let spec = WorkloadSpec::write_heavy(20_000).with_codec(small_codec());
    let udc = run(true, &spec);
    let ldc = run(false, &spec);
    let t_udc = udc.0.device().clock().now();
    let t_ldc = ldc.0.device().clock().now();
    assert!(
        t_ldc < t_udc,
        "LDC should finish the same work sooner: {t_ldc} vs {t_udc}"
    );
}

/// Fig 8 / Eq. 3: the worst write stall shrinks by several times.
#[test]
fn claim_write_stalls_shrink() {
    let spec = WorkloadSpec::write_only(25_000).with_codec(small_codec());
    let udc = run(true, &spec);
    let ldc = run(false, &spec);
    let (su, sl) = (udc.0.stats(), ldc.0.stats());
    assert!(
        sl.stall_nanos < su.stall_nanos,
        "LDC total stall time {} should be below UDC {}",
        sl.stall_nanos,
        su.stall_nanos
    );
}

/// Fig 15 / §III-D: LDC's space overhead is bounded by the frozen-region
/// GC budget (default 25% of live level bytes; the budget is measured
/// against LDC's own level bytes, so allow a little slack relative to the
/// UDC denominator used here — `fig15_space` reports the tight-budget
/// setting that reproduces the paper's single-digit numbers).
#[test]
fn claim_space_overhead_is_bounded() {
    let spec = WorkloadSpec::read_write_balanced(20_000).with_codec(small_codec());
    let udc = run(true, &spec);
    let ldc = run(false, &spec);
    let (su, sl) = (udc.0.space_bytes(), ldc.0.space_bytes());
    assert!(
        (sl as f64) < su as f64 * 1.40,
        "LDC space {sl} exceeds 140% of UDC {su}"
    );
}

/// §IV-B (read side): read-only throughput is comparable (within 25%).
#[test]
fn claim_read_only_parity() {
    let spec = WorkloadSpec::read_only(8_000)
        .with_codec(small_codec())
        .with_key_space(6_000);
    let udc = run(true, &spec);
    let ldc = run(false, &spec);
    let t_udc = udc.0.device().clock().now() as f64;
    let t_ldc = ldc.0.device().clock().now() as f64;
    assert!(
        t_ldc < t_udc * 1.25,
        "read-only LDC should be within 25% of UDC: {t_ldc} vs {t_udc}"
    );
}

/// Theorems 2.1/3.1 directionally: measured write amplification drops.
#[test]
fn claim_write_amplification_drops() {
    let spec = WorkloadSpec::write_only(25_000).with_codec(small_codec());
    let udc = run(true, &spec);
    let ldc = run(false, &spec);
    let waf = |a: &Adapter| {
        let io = a.0.device().io_stats();
        io.total_write_bytes() as f64 / io.write_bytes_for(ldc::ssd::IoClass::WalWrite) as f64
    };
    let (wu, wl) = (waf(&udc), waf(&ldc));
    assert!(wl < wu, "LDC write amp {wl:.2} should be below UDC {wu:.2}");
}
