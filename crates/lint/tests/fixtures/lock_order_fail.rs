// Fixture (checked as crates/lsm/src/cache.rs): acquires the table-map
// lock while holding the cache lock — backwards in the declared order —
// and re-acquires a held lock.
struct C {
    inner: Mutex<u32>,
}

fn backwards(c: &C, db: &Db) {
    let cache_guard = c.inner.lock();
    let table_guard = db.tables.lock(); // flagged: inner held, tables ranks earlier
    use_both(cache_guard, table_guard);
}

fn reentrant(c: &C) {
    let a = c.inner.lock();
    let b = c.inner.lock(); // flagged: re-entrant acquisition
    use_both(a, b);
}
