//! Synchronous and pipelined TCP clients for `ldc-server`.
//!
//! [`Client`] owns one connection. `call` is strict request/response;
//! [`Client::pipeline`] writes a whole batch before reading any replies,
//! tolerating out-of-order completion across shards (responses are
//! matched by request id and returned in request order). For fully
//! decoupled open-loop load generation, [`Client::split`] hands back an
//! independent sender/receiver pair over cloned socket handles.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::proto::{
    decode_response, encode_request, read_frame, write_frame, FrameError, ProtoError, Request,
    Response, ResponseBody, ServerStats, Status,
};

/// Client-side failure taxonomy.
#[derive(Debug)]
pub enum NetError {
    /// Transport failure (connect, read, write).
    Io(std::io::Error),
    /// The server's reply could not be decoded.
    Proto(ProtoError),
    /// The stream ended mid-frame.
    TornFrame,
    /// The server closed the connection before replying.
    Disconnected,
    /// The server answered with a non-Ok status.
    Remote {
        /// The wire status.
        status: Status,
        /// Retry hint in milliseconds, when the server provided one
        /// (overload rejections always do).
        retry_after_ms: Option<u32>,
        /// Human-readable detail, when the server provided one.
        message: String,
    },
    /// The server answered Ok but with a payload shape that does not
    /// match the request (a server bug, surfaced rather than panicking).
    UnexpectedBody,
}

impl NetError {
    /// Whether retrying (possibly after a delay) may succeed.
    pub fn is_retryable(&self) -> bool {
        match self {
            NetError::Remote { status, .. } => status.is_retryable(),
            _ => false,
        }
    }

    fn from_frame(err: FrameError) -> NetError {
        match err {
            FrameError::Eof => NetError::Disconnected,
            FrameError::TruncatedFrame { .. } => NetError::TornFrame,
            FrameError::TooLarge { len } => NetError::Proto(ProtoError::TooLarge { len }),
            FrameError::Io(e) => NetError::Io(e),
        }
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Proto(e) => write!(f, "protocol: {e}"),
            NetError::TornFrame => write!(f, "connection ended mid-frame"),
            NetError::Disconnected => write!(f, "server closed the connection"),
            NetError::Remote {
                status,
                retry_after_ms,
                message,
            } => {
                write!(f, "server error {}", status.label())?;
                if let Some(ms) = retry_after_ms {
                    write!(f, " (retry after {ms}ms)")?;
                }
                if !message.is_empty() {
                    write!(f, ": {message}")?;
                }
                Ok(())
            }
            NetError::UnexpectedBody => write!(f, "response payload does not match request"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Key-ordered `(key, value)` rows returned by a scan.
pub type ScanRows = Vec<(Vec<u8>, Vec<u8>)>;

/// Per-key results of a batched lookup, in request order.
pub type BatchValues = Vec<Option<Vec<u8>>>;

/// Per-response server-side timing, surfaced with every successful call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetMeta {
    /// Shard that served the request.
    pub shard: u16,
    /// Host nanoseconds spent in the admission queue.
    pub queue_ns: u64,
    /// Virtual engine nanoseconds spent serving.
    pub service_ns: u64,
}

impl NetMeta {
    fn of(resp: &Response) -> NetMeta {
        NetMeta {
            shard: resp.shard,
            queue_ns: resp.queue_ns,
            service_ns: resp.service_ns,
        }
    }
}

fn check_status(resp: &Response) -> Result<(), NetError> {
    if resp.status == Status::Ok {
        return Ok(());
    }
    let (retry_after_ms, message) = match &resp.body {
        ResponseBody::RetryAfterMs(ms) => (Some(*ms), String::new()),
        ResponseBody::Message(m) => (None, m.clone()),
        _ => (None, String::new()),
    };
    Err(NetError::Remote {
        status: resp.status,
        retry_after_ms,
        message,
    })
}

/// One synchronous connection to an `ldc-server`.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects over TCP. `TCP_NODELAY` is set: the protocol is
    /// latency-bound small frames.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Client {
            reader,
            writer,
            next_id: 1,
        })
    }

    fn send(&mut self, request: &Request) -> Result<u64, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        let body = encode_request(id, request);
        write_frame(&mut self.writer, &body)?;
        Ok(id)
    }

    fn recv(&mut self) -> Result<Response, NetError> {
        let body = read_frame(&mut self.reader).map_err(NetError::from_frame)?;
        decode_response(&body).map_err(NetError::Proto)
    }

    /// One strict request/response round trip. Returns the raw
    /// [`Response`] (including error statuses) so callers that care about
    /// the overload hint can see it; the typed helpers below convert
    /// non-Ok statuses into [`NetError::Remote`].
    pub fn call(&mut self, request: &Request) -> Result<Response, NetError> {
        let id = self.send(request)?;
        self.writer.flush()?;
        let resp = self.recv()?;
        if resp.req_id != id {
            // Strict call mode never has more than one request in flight,
            // so an id mismatch means the stream is desynchronized.
            return Err(NetError::Proto(ProtoError::BadOpcode(0)));
        }
        Ok(resp)
    }

    /// Writes every request, flushes once, then reads until every reply
    /// arrived. Replies are returned in request order regardless of the
    /// order shards completed them. Per-request errors (overload,
    /// storage) come back as statuses in the responses, not as `Err`.
    pub fn pipeline(&mut self, requests: &[Request]) -> Result<Vec<Response>, NetError> {
        let mut ids = Vec::with_capacity(requests.len());
        for request in requests {
            ids.push(self.send(request)?);
        }
        self.writer.flush()?;
        let mut by_id: HashMap<u64, Response> = HashMap::with_capacity(ids.len());
        while by_id.len() < ids.len() {
            let resp = self.recv()?;
            by_id.insert(resp.req_id, resp);
        }
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            match by_id.remove(&id) {
                Some(resp) => out.push(resp),
                None => return Err(NetError::Disconnected),
            }
        }
        Ok(out)
    }

    /// Inserts or overwrites one key.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<NetMeta, NetError> {
        let resp = self.call(&Request::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        })?;
        check_status(&resp)?;
        Ok(NetMeta::of(&resp))
    }

    /// Point lookup.
    pub fn get(&mut self, key: &[u8]) -> Result<(Option<Vec<u8>>, NetMeta), NetError> {
        let resp = self.call(&Request::Get { key: key.to_vec() })?;
        check_status(&resp)?;
        let meta = NetMeta::of(&resp);
        match resp.body {
            ResponseBody::Value(v) => Ok((v, meta)),
            _ => Err(NetError::UnexpectedBody),
        }
    }

    /// Tombstones one key.
    pub fn delete(&mut self, key: &[u8]) -> Result<NetMeta, NetError> {
        let resp = self.call(&Request::Delete { key: key.to_vec() })?;
        check_status(&resp)?;
        Ok(NetMeta::of(&resp))
    }

    /// Cross-shard merged range scan.
    pub fn scan(&mut self, start: &[u8], limit: u32) -> Result<(ScanRows, NetMeta), NetError> {
        let resp = self.call(&Request::Scan {
            start: start.to_vec(),
            limit,
        })?;
        check_status(&resp)?;
        let meta = NetMeta::of(&resp);
        match resp.body {
            ResponseBody::Entries(entries) => Ok((entries, meta)),
            _ => Err(NetError::UnexpectedBody),
        }
    }

    /// Batched point lookups; each shard answers its keys from one
    /// pinned snapshot.
    pub fn multi_get(&mut self, keys: &[&[u8]]) -> Result<(BatchValues, NetMeta), NetError> {
        let resp = self.call(&Request::MultiGet {
            keys: keys.iter().map(|k| k.to_vec()).collect(),
        })?;
        check_status(&resp)?;
        let meta = NetMeta::of(&resp);
        match resp.body {
            ResponseBody::Values(values) => Ok((values, meta)),
            _ => Err(NetError::UnexpectedBody),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), NetError> {
        let resp = self.call(&Request::Ping)?;
        check_status(&resp)
    }

    /// Fetches the server's per-shard admission statistics.
    pub fn stats(&mut self) -> Result<ServerStats, NetError> {
        let resp = self.call(&Request::Stats)?;
        check_status(&resp)?;
        match resp.body {
            ResponseBody::Stats(stats) => Ok(stats),
            _ => Err(NetError::UnexpectedBody),
        }
    }

    /// Splits the connection into an independent sender and receiver so
    /// one thread can issue open-loop load while another drains replies.
    pub fn split(self) -> Result<(NetSender, NetReceiver), NetError> {
        let Client {
            reader,
            writer,
            next_id,
        } = self;
        Ok((NetSender { writer, next_id }, NetReceiver { reader }))
    }
}

/// Write half of a split connection.
#[derive(Debug)]
pub struct NetSender {
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl NetSender {
    /// Frames and buffers one request; returns its id for matching.
    pub fn send(&mut self, request: &Request) -> Result<u64, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        let body = encode_request(id, request);
        write_frame(&mut self.writer, &body)?;
        Ok(id)
    }

    /// Flushes buffered frames to the socket.
    pub fn flush(&mut self) -> Result<(), NetError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Shuts down the write direction so the server's reader sees EOF.
    pub fn finish(mut self) -> Result<(), NetError> {
        self.writer.flush()?;
        self.writer.get_ref().shutdown(std::net::Shutdown::Write)?;
        Ok(())
    }
}

/// Read half of a split connection.
#[derive(Debug)]
pub struct NetReceiver {
    reader: BufReader<TcpStream>,
}

impl NetReceiver {
    /// Blocks for the next response, in whatever order the server
    /// completed them. Returns `Ok(None)` on clean end of stream.
    pub fn recv(&mut self) -> Result<Option<Response>, NetError> {
        match read_frame(&mut self.reader) {
            Ok(body) => Ok(Some(decode_response(&body).map_err(NetError::Proto)?)),
            Err(FrameError::Eof) => Ok(None),
            Err(e) => Err(NetError::from_frame(e)),
        }
    }
}
