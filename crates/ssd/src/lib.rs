//! # ldc-ssd — simulated SSD substrate
//!
//! The LDC paper (ICDE 2019) evaluates its compaction mechanism on an
//! enterprise PCIe SSD whose defining characteristics are:
//!
//! 1. **asymmetric bandwidth** — reads are roughly an order of magnitude
//!    faster than writes,
//! 2. **internal write amplification** — a flash translation layer (FTL)
//!    relocates live pages during garbage collection, and
//! 3. **limited write endurance** — each erase block survives a bounded
//!    number of program/erase cycles.
//!
//! This crate reproduces those characteristics in a deterministic simulator
//! so that every experiment in the reproduction is a pure function of the
//! I/O schedule the key-value store produces:
//!
//! * [`VirtualClock`] — a shared nanosecond clock that device operations
//!   advance; foreground request latency is measured against it.
//! * [`TimeLedger`] — per-category time accounting used to regenerate the
//!   paper's Table I (where does LevelDB spend its time?).
//! * [`Ftl`] — a page-mapping flash translation layer with greedy garbage
//!   collection, over-provisioning, TRIM, and per-block erase counters.
//! * [`SsdDevice`] — the device front-end: charges virtual time for every
//!   transfer, classifies traffic via [`IoClass`], and exposes wear and
//!   throughput statistics.
//! * [`StorageBackend`] / [`MemStorage`] — the file-level API the LSM engine
//!   is written against; `MemStorage` keeps file contents in memory while
//!   charging all traffic to the device model.
//!
//! The simulator is intentionally single-purpose: it models exactly the
//! quantities the paper's claims depend on (bytes moved, read/write
//! asymmetry, erase counts) and nothing else.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

mod clock;
mod config;
mod device;
mod disk;
mod error;
mod ftl;
mod stats;
mod storage;

pub use clock::{Nanos, TimeCategory, TimeLedger, TimerGuard, VirtualClock};
pub use config::SsdConfig;
pub use device::{DeviceSnapshot, SsdDevice};
pub use disk::DiskStorage;
pub use error::{SsdError, SsdResult};
pub use ftl::{Ftl, FtlStats};
pub use stats::{IoClass, IoStats, IoStatsSnapshot};
pub use storage::{FileHandle, MemStorage, StorageBackend};
