//! Shared-handle concurrency: many readers race one writer while forced
//! flushes and compactions churn the file set underneath them, in both
//! compaction modes. Readers must always observe exactly the model state
//! for keys the writer never touches, and writes must never be lost.
//!
//! Multi-threaded runs promise correctness, not timing reproducibility
//! (see DESIGN.md §10), so these tests assert values and invariants, never
//! virtual-clock readings.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use ldc_core::LdcDb;
use ldc_lsm::{Options, WriteBatch};
use proptest::prelude::*;

fn stable_kv(i: u64) -> (Vec<u8>, Vec<u8>) {
    // Hash-spread like a hashed workload so files overlap across levels.
    let h = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (
        format!("stable{h:016x}").into_bytes(),
        format!("value-{i:08}-{}", "y".repeat(64)).into_bytes(),
    )
}

fn fresh_kv(i: u64) -> (Vec<u8>, Vec<u8>) {
    let h = i.wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    (
        format!("fresh{h:016x}").into_bytes(),
        format!("new-{i:08}-{}", "z".repeat(64)).into_bytes(),
    )
}

/// 8 readers + 1 writer + forced compactions on one shared handle. The
/// readers check every stable key against the model while the writer's
/// inserts force flushes and multi-level compactions; afterwards the whole
/// store must equal model ∪ writes.
fn readers_vs_writer_under_compaction(db: LdcDb) {
    const STABLE: u64 = 1200;
    const FRESH: u64 = 2500;
    const READERS: u64 = 8;

    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for i in 0..STABLE {
        let (k, v) = stable_kv(i);
        db.put(&k, &v).unwrap();
        model.insert(k, v);
    }
    // Settle the preload so reader misses can't be blamed on it.
    db.drain_background();

    let reads_done = AtomicU64::new(0);
    std::thread::scope(|s| {
        for r in 0..READERS {
            let db = &db;
            let model = &model;
            let reads_done = &reads_done;
            s.spawn(move || {
                let mut i = r * 131;
                loop {
                    let (k, v) = stable_kv(i % STABLE);
                    assert_eq!(
                        db.get(&k).unwrap().as_deref(),
                        Some(model.get(&k).unwrap().as_slice()),
                        "reader {r} lost stable key {i}"
                    );
                    // Zero-copy path must agree with the owned path.
                    let pinned = db.get_pinned(&k).unwrap().expect("pinned stable key");
                    assert_eq!(pinned.as_slice(), v.as_slice());
                    // Scans cross levels mid-compaction; spot-check ordering.
                    if i % 97 == 0 {
                        let rows = db.scan(b"stable", 16).unwrap();
                        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
                    }
                    i += 1;
                    if reads_done.fetch_add(1, Ordering::Relaxed) > 40_000 {
                        break;
                    }
                }
            });
        }
        let db = &db;
        s.spawn(move || {
            for i in 0..FRESH {
                let (k, v) = fresh_kv(i);
                db.put(&k, &v).unwrap();
                // Periodically force the background lane to run *now*, so
                // compactions land in the middle of the readers' loops.
                if i % 500 == 499 {
                    db.drain_background();
                }
            }
        });
    });

    db.drain_background();
    let stats = db.stats();
    assert!(stats.flushes > 0, "writer volume must force flushes");
    assert!(
        stats.merges + stats.trivial_moves + stats.links + stats.ldc_merges > 0,
        "compactions must have run during the race: {stats:?}"
    );
    for (k, v) in &model {
        assert_eq!(db.get(k).unwrap().as_deref(), Some(v.as_slice()));
    }
    for i in (0..FRESH).step_by(61) {
        let (k, v) = fresh_kv(i);
        assert_eq!(db.get(&k).unwrap(), Some(v), "fresh key {i} lost");
    }
    db.engine_ref().version().check_invariants().unwrap();
}

#[test]
fn concurrent_smoke_udc() {
    let db = LdcDb::builder()
        .options(Options::small_for_tests())
        .udc_baseline()
        .build()
        .unwrap();
    readers_vs_writer_under_compaction(db);
}

#[test]
fn concurrent_smoke_ldc() {
    let db = LdcDb::builder()
        .options(Options::small_for_tests())
        .build()
        .unwrap();
    readers_vs_writer_under_compaction(db);
}

/// Group commit correctness: 8 threads each commit disjoint batches through
/// one handle; every batch must be atomic and none may be lost, whichever
/// writer happens to lead each group.
#[test]
fn concurrent_batch_writers_all_commit() {
    let db = LdcDb::builder()
        .options(Options::small_for_tests())
        .build()
        .unwrap();
    const WRITERS: u64 = 8;
    const BATCHES: u64 = 40;
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let db = &db;
            s.spawn(move || {
                for b in 0..BATCHES {
                    let mut batch = WriteBatch::new();
                    for item in 0..4u64 {
                        batch.put(
                            format!("w{w:02}b{b:03}i{item}").as_bytes(),
                            format!("payload-{w}-{b}-{item}-{}", "p".repeat(32)).as_bytes(),
                        );
                    }
                    db.write(batch).unwrap();
                }
            });
        }
    });
    db.drain_background();
    for w in 0..WRITERS {
        for b in 0..BATCHES {
            for item in 0..4u64 {
                let k = format!("w{w:02}b{b:03}i{item}");
                assert_eq!(
                    db.get(k.as_bytes()).unwrap(),
                    Some(format!("payload-{w}-{b}-{item}-{}", "p".repeat(32)).into_bytes()),
                    "lost {k}"
                );
            }
        }
    }
    let stats = db.stats();
    assert_eq!(stats.writes, WRITERS * BATCHES * 4);
}

/// `multi_get` snapshot consistency: a writer flips pairs of keys
/// atomically (one WriteBatch per version) while readers batch-read both
/// keys; every `multi_get` must observe a single version for the whole
/// pair — one pinned snapshot, never a torn mix of two batches.
#[test]
fn multi_get_observes_one_snapshot() {
    let db = LdcDb::builder()
        .options(Options::small_for_tests())
        .build()
        .unwrap();
    const PAIRS: u64 = 8;
    const VERSIONS: u64 = 120;
    let key = |p: u64, side: &str| format!("mg{p:02}{side}").into_bytes();
    let val = |v: u64| format!("ver-{v:06}-{}", "m".repeat(48)).into_bytes();
    for p in 0..PAIRS {
        let mut batch = WriteBatch::new();
        batch.put(&key(p, "a"), &val(0));
        batch.put(&key(p, "b"), &val(0));
        db.write(batch).unwrap();
    }
    db.drain_background();

    std::thread::scope(|s| {
        for r in 0..4u64 {
            let db = &db;
            s.spawn(move || {
                let mut p = r;
                for _ in 0..400 {
                    p = (p + 1) % PAIRS;
                    let (ka, kb) = (key(p, "a"), key(p, "b"));
                    let got = db.multi_get(&[&ka, &kb]).unwrap();
                    let a = got[0].clone().expect("pair key a missing");
                    let b = got[1].clone().expect("pair key b missing");
                    assert_eq!(
                        a,
                        b,
                        "multi_get tore across a batch on pair {p}: {:?} vs {:?}",
                        String::from_utf8_lossy(&a),
                        String::from_utf8_lossy(&b)
                    );
                }
            });
        }
        // Writer: bump every pair through VERSIONS atomic versions with
        // enough payload to force flushes mid-run.
        for v in 1..=VERSIONS {
            for p in 0..PAIRS {
                let mut batch = WriteBatch::new();
                batch.put(&key(p, "a"), &val(v));
                batch.put(&key(p, "b"), &val(v));
                db.write(batch).unwrap();
            }
        }
    });
    db.drain_background();
    let ka = key(3, "a");
    let kb = key(3, "b");
    let got = db.multi_get(&[&ka, &kb, b"absent-key"]).unwrap();
    assert_eq!(got[0], Some(val(VERSIONS)));
    assert_eq!(got[1], Some(val(VERSIONS)));
    assert_eq!(got[2], None);
}

/// `build_shards` opens N independent stores: disjoint devices, shared
/// configuration, and no cross-shard visibility.
#[test]
fn build_shards_yields_independent_stores() {
    let shards = LdcDb::builder()
        .options(Options::small_for_tests())
        .build_shards(4)
        .unwrap();
    assert_eq!(shards.len(), 4);
    for (i, db) in shards.iter().enumerate() {
        db.put(format!("shard{i}").as_bytes(), b"own").unwrap();
    }
    for (i, db) in shards.iter().enumerate() {
        for j in 0..4 {
            let got = db.get(format!("shard{j}").as_bytes()).unwrap();
            if i == j {
                assert_eq!(got, Some(b"own".to_vec()));
            } else {
                assert_eq!(got, None, "shard {i} saw shard {j}'s key");
            }
        }
    }
    assert!(LdcDb::builder().build_shards(0).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Snapshot isolation: a snapshot pinned before a batch commits must
    /// never observe that batch's effects — not through gets and not
    /// through scans — no matter how the keyspaces overlap or how much
    /// churn follows.
    #[test]
    fn snapshot_never_observes_later_batch(
        pre in prop::collection::vec((0u64..64, any::<u8>()), 1..40),
        batch_ops in prop::collection::vec((0u64..64, any::<bool>()), 1..40),
        churn in 0u64..600,
    ) {
        let db = LdcDb::builder()
            .options(Options::small_for_tests())
            .build()
            .unwrap();
        let key = |i: u64| format!("pkey{i:04}").into_bytes();

        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for (i, tag) in &pre {
            let v = format!("pre-{tag:03}-{}", "q".repeat(24)).into_bytes();
            db.put(&key(*i), &v).unwrap();
            model.insert(key(*i), v);
        }

        let snap = db.snapshot();

        // The later batch both overwrites pre-state keys and inserts and
        // deletes fresh ones; none of it may leak into the snapshot.
        let mut batch = WriteBatch::new();
        for (i, put) in &batch_ops {
            if *put {
                batch.put(&key(*i), format!("post-{i}").as_bytes());
            } else {
                batch.delete(&key(*i));
            }
        }
        db.write(batch).unwrap();
        // Churn forces flushes/compactions so the snapshot read crosses
        // from the memtable into tables.
        for c in 0..churn {
            db.put(
                format!("churn{c:05}").as_bytes(),
                format!("c-{c}-{}", "r".repeat(64)).as_bytes(),
            ).unwrap();
        }
        db.drain_background();

        for i in 0..64u64 {
            let k = key(i);
            prop_assert_eq!(
                db.get_at(&k, &snap).unwrap(),
                model.get(&k).cloned(),
                "snapshot read of key {} drifted", i
            );
        }
        let rows = db.scan_at(b"pkey", 64, &snap).unwrap();
        let expect: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(rows, expect);
        db.release_snapshot(snap);
    }
}
