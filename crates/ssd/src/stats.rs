//! Traffic classification and byte counters.
//!
//! The paper's evaluation repeatedly distinguishes *why* bytes moved:
//! Fig 10(c), Fig 12(d)–(f) and Fig 14 report compaction read/write volumes
//! separately from user traffic. Every storage call in this reproduction is
//! tagged with an [`IoClass`] so those figures can be regenerated exactly.

use std::sync::atomic::{AtomicU64, Ordering};

/// Why a piece of I/O happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoClass {
    /// Foreground point/range reads on behalf of user requests.
    UserRead,
    /// Write-ahead-log appends.
    WalWrite,
    /// Memtable flushes into Level-0 SSTables.
    FlushWrite,
    /// Reads performed by compaction (inputs).
    CompactionRead,
    /// Writes performed by compaction (outputs).
    CompactionWrite,
    /// Manifest / metadata writes.
    ManifestWrite,
    /// Everything else (recovery reads, test traffic, ...).
    Other,
}

impl IoClass {
    /// All classes, in report order.
    pub const ALL: [IoClass; 7] = [
        IoClass::UserRead,
        IoClass::WalWrite,
        IoClass::FlushWrite,
        IoClass::CompactionRead,
        IoClass::CompactionWrite,
        IoClass::ManifestWrite,
        IoClass::Other,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            IoClass::UserRead => "user-read",
            IoClass::WalWrite => "wal-write",
            IoClass::FlushWrite => "flush-write",
            IoClass::CompactionRead => "compaction-read",
            IoClass::CompactionWrite => "compaction-write",
            IoClass::ManifestWrite => "manifest-write",
            IoClass::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            IoClass::UserRead => 0,
            IoClass::WalWrite => 1,
            IoClass::FlushWrite => 2,
            IoClass::CompactionRead => 3,
            IoClass::CompactionWrite => 4,
            IoClass::ManifestWrite => 5,
            IoClass::Other => 6,
        }
    }
}

#[derive(Debug, Default)]
struct ClassCounter {
    bytes: AtomicU64,
    ops: AtomicU64,
}

/// Lock-free per-class byte/op counters.
#[derive(Debug, Default)]
pub struct IoStats {
    read: [ClassCounter; 7],
    write: [ClassCounter; 7],
}

/// A point-in-time copy of [`IoStats`], supporting subtraction so
/// experiments can report deltas over a measurement window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    /// Bytes read per class, indexed as [`IoClass::ALL`].
    pub read_bytes: [u64; 7],
    /// Read calls per class.
    pub read_ops: [u64; 7],
    /// Bytes written per class.
    pub write_bytes: [u64; 7],
    /// Write calls per class.
    pub write_ops: [u64; 7],
}

impl IoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a read of `bytes` for `class`.
    pub fn record_read(&self, class: IoClass, bytes: u64) {
        let c = &self.read[class.index()];
        c.bytes.fetch_add(bytes, Ordering::Relaxed);
        c.ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a write of `bytes` for `class`.
    pub fn record_write(&self, class: IoClass, bytes: u64) {
        let c = &self.write[class.index()];
        c.bytes.fetch_add(bytes, Ordering::Relaxed);
        c.ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies all counters.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        let mut s = IoStatsSnapshot::default();
        for (i, _) in IoClass::ALL.iter().enumerate() {
            s.read_bytes[i] = self.read[i].bytes.load(Ordering::Relaxed);
            s.read_ops[i] = self.read[i].ops.load(Ordering::Relaxed);
            s.write_bytes[i] = self.write[i].bytes.load(Ordering::Relaxed);
            s.write_ops[i] = self.write[i].ops.load(Ordering::Relaxed);
        }
        s
    }
}

impl IoStatsSnapshot {
    /// Bytes read for one class.
    pub fn read_bytes_for(&self, class: IoClass) -> u64 {
        self.read_bytes[class.index()]
    }

    /// Bytes written for one class.
    pub fn write_bytes_for(&self, class: IoClass) -> u64 {
        self.write_bytes[class.index()]
    }

    /// Total bytes read across classes.
    pub fn total_read_bytes(&self) -> u64 {
        self.read_bytes.iter().sum()
    }

    /// Total bytes written across classes.
    pub fn total_write_bytes(&self) -> u64 {
        self.write_bytes.iter().sum()
    }

    /// Compaction input volume (Fig 10c's "read" series).
    pub fn compaction_read_bytes(&self) -> u64 {
        self.read_bytes_for(IoClass::CompactionRead)
    }

    /// Compaction output volume (Fig 10c's "write" series).
    pub fn compaction_write_bytes(&self) -> u64 {
        self.write_bytes_for(IoClass::CompactionWrite)
    }

    /// LSM-level write amplification: device writes / user payload bytes.
    ///
    /// `user_bytes` is the logical volume the client wrote (keys+values).
    pub fn lsm_write_amplification(&self, user_bytes: u64) -> f64 {
        if user_bytes == 0 {
            0.0
        } else {
            self.total_write_bytes() as f64 / user_bytes as f64
        }
    }

    /// Element-wise difference `self - earlier`, for windowed measurements.
    pub fn delta_since(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        let mut d = IoStatsSnapshot::default();
        for i in 0..7 {
            d.read_bytes[i] = self.read_bytes[i].saturating_sub(earlier.read_bytes[i]);
            d.read_ops[i] = self.read_ops[i].saturating_sub(earlier.read_ops[i]);
            d.write_bytes[i] = self.write_bytes[i].saturating_sub(earlier.write_bytes[i]);
            d.write_ops[i] = self.write_ops[i].saturating_sub(earlier.write_ops[i]);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_class() {
        let stats = IoStats::new();
        stats.record_read(IoClass::UserRead, 100);
        stats.record_read(IoClass::UserRead, 50);
        stats.record_write(IoClass::CompactionWrite, 1000);
        let s = stats.snapshot();
        assert_eq!(s.read_bytes_for(IoClass::UserRead), 150);
        assert_eq!(s.read_ops[IoClass::UserRead.index()], 2);
        assert_eq!(s.compaction_write_bytes(), 1000);
        assert_eq!(s.total_read_bytes(), 150);
        assert_eq!(s.total_write_bytes(), 1000);
    }

    #[test]
    fn delta_subtracts_windows() {
        let stats = IoStats::new();
        stats.record_write(IoClass::FlushWrite, 10);
        let before = stats.snapshot();
        stats.record_write(IoClass::FlushWrite, 90);
        let after = stats.snapshot();
        let delta = after.delta_since(&before);
        assert_eq!(delta.write_bytes_for(IoClass::FlushWrite), 90);
        assert_eq!(delta.write_ops[IoClass::FlushWrite.index()], 1);
    }

    #[test]
    fn delta_since_saturates_instead_of_underflowing() {
        // Snapshots taken from two different devices (or swapped by a
        // caller) can have `earlier > self`; the delta must clamp to zero
        // rather than wrap to ~u64::MAX and poison windowed metrics.
        let stats = IoStats::new();
        stats.record_write(IoClass::FlushWrite, 500);
        stats.record_read(IoClass::UserRead, 200);
        let big = stats.snapshot();
        let small = IoStats::new().snapshot();
        let delta = small.delta_since(&big);
        assert_eq!(delta.total_write_bytes(), 0);
        assert_eq!(delta.total_read_bytes(), 0);
        for i in 0..delta.read_ops.len() {
            assert_eq!(delta.read_ops[i], 0);
            assert_eq!(delta.write_ops[i], 0);
        }
        // And the well-ordered direction still measures the window.
        assert_eq!(big.delta_since(&small).total_write_bytes(), 500);
    }

    #[test]
    fn write_amplification_relative_to_user_bytes() {
        let stats = IoStats::new();
        stats.record_write(IoClass::WalWrite, 100);
        stats.record_write(IoClass::FlushWrite, 100);
        stats.record_write(IoClass::CompactionWrite, 300);
        let s = stats.snapshot();
        assert!((s.lsm_write_amplification(100) - 5.0).abs() < 1e-12);
        assert_eq!(s.lsm_write_amplification(0), 0.0);
    }

    #[test]
    fn labels_cover_all_classes() {
        for class in IoClass::ALL {
            assert!(!class.label().is_empty());
        }
    }
}
