//! Per-operation tracing with tail-latency blame attribution.
//!
//! PR 1's flat event stream and per-op histograms can say *that* a request
//! was slow, but not *why*. This module answers "why": every traced
//! read/write/scan carries a [`TraceCtx`] that records virtual-clock-stamped
//! phase spans (WAL append, group-commit wait, L0 stall/slowdown sleep,
//! memtable insert, SSTable block I/O, SSD GC carve-outs, retry backoff)
//! into a span tree, and a **blame taxonomy** ([`Blame`]) that attributes
//! every nanosecond of the op's latency to exactly one bucket.
//!
//! Attribution rule: each span's *self time* (its duration minus the total
//! duration of its direct children) is charged to its blame. Span 0 is the
//! root and covers the whole operation with the catch-all [`Blame::Engine`],
//! so the blame buckets sum to the op's total latency **exactly** — there is
//! no "unaccounted" residue by construction (see [`Trace::blame_breakdown`]).
//!
//! On top sits the [`TraceReservoir`]: a fixed-size worst-K store per op
//! type that keeps the slowest requests with their full span trees. It is
//! deterministic: ordering is (latency desc, seeded-hash tie-break, arrival
//! order), so same seed + same single-threaded run ⇒ byte-identical
//! reservoir contents.
//!
//! Zero-cost rule: nothing in this module ever *advances* the virtual
//! clock — tracing only reads timestamps the engine already produced. An
//! engine run with tracing enabled is therefore time-identical to one with
//! tracing disabled, and a disabled tracer costs one `Option` branch per op.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::lockcheck::Mutex;

use crate::event::Nanos;
use crate::metrics::OpType;

/// Who a slice of latency is blamed on. Every nanosecond of a traced op
/// lands in exactly one bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Blame {
    /// Synchronous WAL append + fsync (`wal_sync` mode).
    WalSync,
    /// Buffered WAL append (syscall cost; device write is async).
    WalAppend,
    /// Waiting for a commit-group leader to post this batch's result.
    GroupCommitWait,
    /// Hard write gate: L0 stop or memtable-rotation wait.
    Stall,
    /// Soft write gate: the L0 slowdown sleep.
    Slowdown,
    /// Memtable insert/probe CPU cost.
    Memtable,
    /// SSTable block/index/filter I/O on a cache miss (zero on a hit —
    /// cached reads cost no virtual time).
    CacheMissIo,
    /// Foreground bandwidth lost to concurrent flush/compaction.
    CompactionInterference,
    /// Transient-read retry backoff at the storage boundary.
    Retry,
    /// SSD garbage-collection relocation absorbed by a foreground write.
    SsdGc,
    /// Time spent queued in a server-side admission queue before a shard
    /// worker picked the request up (ldc-server; zero for embedded use).
    Admission,
    /// Network service overhead outside the engine and the admission
    /// queue: framing, routing, response dispatch (ldc-server).
    Net,
    /// Waiting on the background worker pool: time a write spends parked
    /// on a stall gate while a queued/running scheduler job (flush or
    /// compaction) must complete before the gate opens. Distinct from
    /// [`Blame::Stall`], which covers the inline-pump path where the
    /// stalled op executes the background work itself.
    WorkerQueue,
    /// Everything else: engine CPU, filesystem metadata, seeks. The root
    /// span's catch-all — its self time is the op's unattributed residue.
    Engine,
}

impl Blame {
    /// Number of blame buckets.
    pub const COUNT: usize = 14;

    /// Every bucket, in stable report order.
    pub const ALL: [Blame; Blame::COUNT] = [
        Blame::WalSync,
        Blame::WalAppend,
        Blame::GroupCommitWait,
        Blame::Stall,
        Blame::Slowdown,
        Blame::Memtable,
        Blame::CacheMissIo,
        Blame::CompactionInterference,
        Blame::Retry,
        Blame::SsdGc,
        Blame::Admission,
        Blame::Net,
        Blame::WorkerQueue,
        Blame::Engine,
    ];

    /// Stable snake_case label (used in folded stacks and JSON keys).
    pub fn label(&self) -> &'static str {
        match self {
            Blame::WalSync => "wal_sync",
            Blame::WalAppend => "wal_append",
            Blame::GroupCommitWait => "group_commit_wait",
            Blame::Stall => "stall",
            Blame::Slowdown => "slowdown",
            Blame::Memtable => "memtable",
            Blame::CacheMissIo => "cache_miss_io",
            Blame::CompactionInterference => "compaction_interference",
            Blame::Retry => "retry",
            Blame::SsdGc => "ssd_gc",
            Blame::Admission => "admission",
            Blame::Net => "net",
            Blame::WorkerQueue => "worker_queue",
            Blame::Engine => "engine",
        }
    }

    /// Stable index into [`Blame::ALL`]-shaped arrays.
    pub fn index(&self) -> usize {
        match self {
            Blame::WalSync => 0,
            Blame::WalAppend => 1,
            Blame::GroupCommitWait => 2,
            Blame::Stall => 3,
            Blame::Slowdown => 4,
            Blame::Memtable => 5,
            Blame::CacheMissIo => 6,
            Blame::CompactionInterference => 7,
            Blame::Retry => 8,
            Blame::SsdGc => 9,
            Blame::Admission => 10,
            Blame::Net => 11,
            Blame::WorkerQueue => 12,
            Blame::Engine => 13,
        }
    }
}

/// One phase of a traced operation: a closed interval of virtual time with
/// a blame bucket and a position in the span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Which bucket this span's self time is charged to.
    pub blame: Blame,
    /// Static phase label ("l0_stop", "table_probe", ...).
    pub label: &'static str,
    /// Virtual start time.
    pub start: Nanos,
    /// Virtual end time (>= start).
    pub end: Nanos,
    /// Index of the parent span; the root (index 0) points at itself.
    pub parent: usize,
}

impl Span {
    /// Span duration in nanoseconds.
    pub fn duration(&self) -> Nanos {
        self.end.saturating_sub(self.start)
    }
}

/// A live, per-operation trace being built on the request path.
///
/// The context never touches the clock itself: callers pass in `now`
/// values they already read, so tracing cannot perturb virtual time.
#[derive(Debug)]
pub struct TraceCtx {
    op: OpType,
    spans: Vec<Span>,
    /// Open-span stack (indices into `spans`); the root stays open until
    /// [`TraceCtx::finish`].
    open: Vec<usize>,
}

impl TraceCtx {
    /// Starts a trace for `op` at virtual time `now`. The root span covers
    /// the whole operation under [`Blame::Engine`].
    pub fn new(op: OpType, now: Nanos) -> Self {
        Self {
            op,
            spans: vec![Span {
                blame: Blame::Engine,
                label: op.label(),
                start: now,
                end: now,
                parent: 0,
            }],
            open: vec![0],
        }
    }

    /// The operation this trace was started for.
    pub fn op(&self) -> OpType {
        self.op
    }

    /// Opens a child span under the innermost open span. Pair with
    /// [`TraceCtx::exit`].
    pub fn enter(&mut self, blame: Blame, label: &'static str, now: Nanos) {
        let parent = self.open.last().copied().unwrap_or(0);
        let idx = self.spans.len();
        self.spans.push(Span {
            blame,
            label,
            start: now,
            end: now,
            parent,
        });
        self.open.push(idx);
    }

    /// Closes the innermost open span at `now`. Closing the root is a
    /// no-op ([`TraceCtx::finish`] owns that).
    pub fn exit(&mut self, now: Nanos) {
        if self.open.len() <= 1 {
            return;
        }
        if let Some(idx) = self.open.pop() {
            if let Some(span) = self.spans.get_mut(idx) {
                span.end = span.end.max(now);
            }
        }
    }

    /// Records an already-measured closed phase `[start, end]` as a child
    /// of the innermost open span.
    pub fn span(&mut self, blame: Blame, label: &'static str, start: Nanos, end: Nanos) {
        self.enter(blame, label, start);
        self.exit(end);
    }

    /// Reclassifies the trailing `nanos` of the innermost *closed* span as
    /// a child with a different blame — used to carve retry backoff or SSD
    /// GC time out of a coarser I/O span after the fact. The carve is
    /// clamped to the target span's duration so nesting stays valid.
    pub fn carve_from_last(&mut self, blame: Blame, label: &'static str, nanos: Nanos) {
        if nanos == 0 {
            return;
        }
        let target = self.spans.len().saturating_sub(1);
        let Some(parent_span) = self.spans.get(target) else {
            return;
        };
        let carve = nanos.min(parent_span.duration());
        if carve == 0 {
            return;
        }
        let (start, end) = (parent_span.end - carve, parent_span.end);
        self.spans.push(Span {
            blame,
            label,
            start,
            end,
            parent: target,
        });
    }

    /// Closes the trace at `now` and returns the immutable [`Trace`].
    /// `op_index` is the per-op-type arrival number (the reservoir's
    /// deterministic tie-break input).
    pub fn finish(mut self, now: Nanos, op_index: u64) -> Trace {
        // Close any spans a caller left open (error paths), then the root.
        for &idx in self.open.iter().rev() {
            if let Some(span) = self.spans.get_mut(idx) {
                span.end = span.end.max(now);
            }
        }
        let total = self.spans.first().map(Span::duration).unwrap_or_default();
        Trace {
            op: self.op,
            op_index,
            total,
            spans: self.spans,
        }
    }
}

/// A completed per-operation trace: the span tree plus identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Operation type.
    pub op: OpType,
    /// Per-op-type arrival number (0-based) at record time.
    pub op_index: u64,
    /// Total latency: the root span's duration.
    pub total: Nanos,
    /// Preorder span list; index 0 is the root.
    pub spans: Vec<Span>,
}

impl Trace {
    /// Attributes every nanosecond of `total` to exactly one [`Blame`]
    /// bucket: each span's self time (duration minus direct children) goes
    /// to its blame. Under properly nested spans (guaranteed by
    /// [`TraceCtx`] on a monotone clock) the buckets sum to `total`
    /// exactly.
    pub fn blame_breakdown(&self) -> [Nanos; Blame::COUNT] {
        let mut child_time = vec![0u64; self.spans.len()];
        for span in self.spans.iter().skip(1) {
            if let Some(slot) = child_time.get_mut(span.parent) {
                *slot += span.duration();
            }
        }
        let mut out = [0u64; Blame::COUNT];
        for (idx, span) in self.spans.iter().enumerate() {
            let children = child_time.get(idx).copied().unwrap_or_default();
            let self_time = span.duration().saturating_sub(children);
            if let Some(slot) = out.get_mut(span.blame.index()) {
                *slot += self_time;
            }
        }
        out
    }

    /// Renders the span tree as folded stacks (flamegraph-collapsed
    /// format): one `stack;frames count` line per span with nonzero self
    /// time, rooted at the op label. Deterministic: preorder span order.
    pub fn folded_stacks(&self) -> Vec<(String, Nanos)> {
        let mut child_time = vec![0u64; self.spans.len()];
        for span in self.spans.iter().skip(1) {
            if let Some(slot) = child_time.get_mut(span.parent) {
                *slot += span.duration();
            }
        }
        let mut paths: Vec<String> = Vec::with_capacity(self.spans.len());
        let mut out = Vec::new();
        for (idx, span) in self.spans.iter().enumerate() {
            let path = if idx == 0 {
                span.label.to_string()
            } else {
                let parent = paths.get(span.parent).cloned().unwrap_or_default();
                format!("{parent};{}", span.label)
            };
            let self_time = span
                .duration()
                .saturating_sub(child_time.get(idx).copied().unwrap_or_default());
            if self_time > 0 {
                out.push((format!("{path};{}", span.blame.label()), self_time));
            }
            paths.push(path);
        }
        out
    }
}

/// splitmix64 — the reservoir's seeded tie-break hash.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One reservoir entry: the trace plus its precomputed ordering key.
#[derive(Debug, Clone)]
struct Ranked {
    /// Seeded tie-break: equal-latency traces are kept or dropped by this
    /// hash of (seed, op index), not by arrival luck.
    tie: u64,
    trace: Trace,
}

#[derive(Debug, Default)]
struct ReservoirState {
    /// Worst-K per op type, sorted worst-first, indexed by `OpType::index`.
    worst: [Vec<Ranked>; 4],
}

/// Fixed-size worst-K trace store per op type.
///
/// Always-on while tracing is enabled: every finished trace is offered and
/// the K highest-latency ones (per op type) are kept. Ordering is total
/// latency descending, then `splitmix64(seed ^ op_index)` descending, then
/// op index ascending — fully deterministic for a given seed and op
/// sequence, which is what makes `BENCH_tail.json` reservoirs byte-stable
/// across reruns.
#[derive(Debug)]
pub struct TraceReservoir {
    k: usize,
    seed: u64,
    /// Per-op-type arrival counters (assign `op_index` at record time).
    arrivals: [AtomicU64; 4],
    inner: Mutex<ReservoirState>,
}

impl TraceReservoir {
    /// A reservoir keeping the worst `k` traces per op type; `seed` fixes
    /// the tie-break order.
    pub fn new(k: usize, seed: u64) -> Self {
        Self {
            k: k.max(1),
            seed,
            arrivals: std::array::from_fn(|_| AtomicU64::new(0)),
            inner: Mutex::new("obs/trace::inner", ReservoirState::default()),
        }
    }

    /// Capacity per op type.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Claims the next arrival number for `op`. Call once per traced op,
    /// before [`TraceReservoir::offer`].
    pub fn next_op_index(&self, op: OpType) -> u64 {
        self.arrivals
            .get(op.index())
            .map(|a| a.fetch_add(1, Ordering::Relaxed))
            .unwrap_or_default()
    }

    /// Offers a finished trace; it is kept iff it ranks in the worst K of
    /// its op type.
    pub fn offer(&self, trace: Trace) {
        let tie = splitmix64(self.seed ^ trace.op_index);
        let entry = Ranked { tie, trace };
        let mut st = self.inner.lock();
        let Some(bucket) = st.worst.get_mut(entry.trace.op.index()) else {
            return;
        };
        let pos = bucket.partition_point(|r| {
            (r.trace.total, r.tie, std::cmp::Reverse(r.trace.op_index))
                >= (
                    entry.trace.total,
                    entry.tie,
                    std::cmp::Reverse(entry.trace.op_index),
                )
        });
        if pos >= self.k {
            return;
        }
        bucket.insert(pos, entry);
        bucket.truncate(self.k);
    }

    /// The worst traces for `op`, worst-first.
    pub fn worst(&self, op: OpType) -> Vec<Trace> {
        let st = self.inner.lock();
        st.worst
            .get(op.index())
            .map(|b| b.iter().map(|r| r.trace.clone()).collect())
            .unwrap_or_default()
    }

    /// The worst traces across all op types, grouped by op in
    /// [`OpType::ALL`] order, worst-first within each group.
    pub fn all_worst(&self) -> Vec<Trace> {
        OpType::ALL.iter().flat_map(|&op| self.worst(op)).collect()
    }

    /// Renders the whole reservoir as a deterministic folded-stack text
    /// dump (flamegraph-collapsed format), aggregating self time over all
    /// kept traces per stack path.
    pub fn folded_report(&self) -> String {
        use std::collections::BTreeMap;
        let mut agg: BTreeMap<String, Nanos> = BTreeMap::new();
        for trace in self.all_worst() {
            for (stack, nanos) in trace.folded_stacks() {
                *agg.entry(stack).or_insert(0) += nanos;
            }
        }
        let mut out = String::new();
        for (stack, nanos) in agg {
            out.push_str(&stack);
            out.push(' ');
            out.push_str(&nanos.to_string());
            out.push('\n');
        }
        out
    }

    /// Clears all kept traces and arrival counters.
    pub fn reset(&self) {
        let mut st = self.inner.lock();
        for bucket in st.worst.iter_mut() {
            bucket.clear();
        }
        drop(st);
        for a in &self.arrivals {
            a.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_with(op: OpType, op_index: u64, total: Nanos) -> Trace {
        let ctx = TraceCtx::new(op, 1_000);
        ctx.finish(1_000 + total, op_index)
    }

    #[test]
    fn blame_sums_equal_total_for_nested_spans() {
        let mut ctx = TraceCtx::new(OpType::Put, 100);
        ctx.span(Blame::Slowdown, "l0_slowdown", 100, 1_000_100);
        ctx.enter(Blame::WalSync, "wal_sync", 1_000_100);
        ctx.span(Blame::SsdGc, "gc", 1_200_000, 1_400_000);
        ctx.exit(2_000_000);
        ctx.span(Blame::Memtable, "memtable_insert", 2_000_000, 2_000_500);
        let trace = ctx.finish(2_100_000, 0);
        let bd = trace.blame_breakdown();
        let sum: u64 = bd.iter().sum();
        assert_eq!(sum, trace.total, "blame must account for every nanosecond");
        assert_eq!(bd[Blame::Slowdown.index()], 1_000_000);
        assert_eq!(bd[Blame::SsdGc.index()], 200_000);
        // wal_sync self time excludes the carved GC child.
        assert_eq!(bd[Blame::WalSync.index()], 999_900 - 200_000);
        assert_eq!(bd[Blame::Memtable.index()], 500);
        // Root catch-all gets the residue.
        assert_eq!(
            bd[Blame::Engine.index()],
            trace.total - 1_000_000 - 999_900 - 500
        );
    }

    #[test]
    fn empty_trace_is_all_engine() {
        let trace = trace_with(OpType::Get, 0, 777);
        let bd = trace.blame_breakdown();
        assert_eq!(bd[Blame::Engine.index()], 777);
        assert_eq!(bd.iter().sum::<u64>(), 777);
    }

    #[test]
    fn unclosed_spans_are_closed_by_finish() {
        let mut ctx = TraceCtx::new(OpType::Scan, 0);
        ctx.enter(Blame::CacheMissIo, "scan_io", 10);
        // no exit — error path
        let trace = ctx.finish(100, 0);
        assert_eq!(trace.total, 100);
        let bd = trace.blame_breakdown();
        assert_eq!(bd[Blame::CacheMissIo.index()], 90);
        assert_eq!(bd[Blame::Engine.index()], 10);
    }

    #[test]
    fn carve_clamps_to_span_duration() {
        let mut ctx = TraceCtx::new(OpType::Get, 0);
        ctx.span(Blame::CacheMissIo, "table_probe", 0, 100);
        ctx.carve_from_last(Blame::Retry, "retry_backoff", 5_000);
        let trace = ctx.finish(100, 0);
        let bd = trace.blame_breakdown();
        assert_eq!(bd[Blame::Retry.index()], 100);
        assert_eq!(bd[Blame::CacheMissIo.index()], 0);
        assert_eq!(bd.iter().sum::<u64>(), 100);
    }

    #[test]
    fn folded_stacks_are_rooted_and_self_timed() {
        let mut ctx = TraceCtx::new(OpType::Get, 0);
        ctx.enter(Blame::CacheMissIo, "table_probe", 10);
        ctx.span(Blame::Retry, "retry_backoff", 20, 30);
        ctx.exit(60);
        let trace = ctx.finish(100, 0);
        let folded = trace.folded_stacks();
        assert_eq!(
            folded,
            vec![
                ("get;engine".to_string(), 50),
                ("get;table_probe;cache_miss_io".to_string(), 40),
                ("get;table_probe;retry_backoff;retry".to_string(), 10),
            ]
        );
    }

    #[test]
    fn reservoir_keeps_worst_k_per_op() {
        let r = TraceReservoir::new(2, 42);
        for (i, total) in [10u64, 500, 20, 900, 30].into_iter().enumerate() {
            let idx = r.next_op_index(OpType::Get);
            assert_eq!(idx, i as u64);
            r.offer(trace_with(OpType::Get, idx, total));
        }
        let worst = r.worst(OpType::Get);
        let totals: Vec<u64> = worst.iter().map(|t| t.total).collect();
        assert_eq!(totals, vec![900, 500]);
        assert!(r.worst(OpType::Put).is_empty());
    }

    #[test]
    fn reservoir_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let r = TraceReservoir::new(3, seed);
            // Many equal-latency traces: only the tie-break decides.
            for _ in 0..50 {
                let idx = r.next_op_index(OpType::Put);
                r.offer(trace_with(OpType::Put, idx, 1_000));
            }
            r.worst(OpType::Put)
                .iter()
                .map(|t| t.op_index)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed must reproduce the reservoir");
        assert_ne!(run(7), run(8), "tie-break must be seed-dependent");
    }

    #[test]
    fn folded_report_aggregates_deterministically() {
        let build = || {
            let r = TraceReservoir::new(4, 1);
            for total in [100u64, 200, 300] {
                let idx = r.next_op_index(OpType::Get);
                let mut ctx = TraceCtx::new(OpType::Get, 0);
                ctx.span(Blame::CacheMissIo, "table_probe", 0, total / 2);
                r.offer(ctx.finish(total, idx));
            }
            r.folded_report()
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.contains("get;table_probe;cache_miss_io 300\n"));
        assert!(a.contains("get;engine 300\n"));
    }

    #[test]
    fn reset_clears_reservoir_and_arrivals() {
        let r = TraceReservoir::new(2, 0);
        let idx = r.next_op_index(OpType::Get);
        r.offer(trace_with(OpType::Get, idx, 50));
        r.reset();
        assert!(r.all_worst().is_empty());
        assert_eq!(r.next_op_index(OpType::Get), 0);
    }

    #[test]
    fn blame_labels_and_indices_are_stable() {
        for (i, b) in Blame::ALL.iter().enumerate() {
            assert_eq!(b.index(), i);
            assert!(!b.label().is_empty());
        }
        assert_eq!(Blame::ALL.len(), Blame::COUNT);
    }
}
