//! SSTables: sorted, immutable on-device tables.
//!
//! Layout (LevelDB-shaped):
//!
//! ```text
//! [data block 0][type+crc]
//! [data block 1][type+crc]
//! ...
//! [filter block][type+crc]        SSTable-level Bloom filter
//! [index block][type+crc]         last-key-of-block -> BlockHandle
//! [footer: filter handle, index handle, padding, magic]  (48 bytes)
//! ```
//!
//! Every block carries a one-byte compression tag (always `0` = none) and a
//! masked CRC32C. The footer is fixed-size so a reader can bootstrap from
//! the file tail.

mod builder;
mod reader;

pub use builder::{FinishedTable, TableBuilder};
pub use reader::{Table, TableIter, TableScrubStats};

use std::sync::Arc;

use ldc_ssd::StorageBackend;

use crate::cache::BlockCache;
use crate::encoding::{get_varint64, put_varint64};
use crate::error::{corruption, Result};

/// Opens the SSTable `name`; free-function form of [`Table::open`].
pub fn open_table(
    storage: Arc<dyn StorageBackend>,
    name: impl Into<String>,
    file_number: u64,
    cache: Arc<BlockCache>,
) -> Result<Arc<Table>> {
    Table::open(storage, name, file_number, cache)
}

/// Magic number identifying our table footer.
pub const TABLE_MAGIC: u64 = 0x4c44_435f_5353_5431; // "LDC_SST1"

/// Fixed footer size.
pub const FOOTER_SIZE: usize = 48;

/// Per-block trailer: compression tag byte + 4-byte masked CRC.
pub const BLOCK_TRAILER_SIZE: usize = 5;

/// Location of a block within a table file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockHandle {
    /// Byte offset of the block start.
    pub offset: u64,
    /// Length of the block payload (excluding its trailer).
    pub size: u64,
}

impl BlockHandle {
    /// Appends the varint encoding.
    pub fn encode_to(&self, dst: &mut Vec<u8>) {
        put_varint64(dst, self.offset);
        put_varint64(dst, self.size);
    }

    /// Decodes from the front of `src`, returning the handle and bytes used.
    pub fn decode_from(src: &[u8]) -> Result<(BlockHandle, usize)> {
        let (offset, n1) = get_varint64(src).ok_or_else(|| corruption("bad handle offset"))?;
        let (size, n2) = get_varint64(&src[n1..]).ok_or_else(|| corruption("bad handle size"))?;
        Ok((BlockHandle { offset, size }, n1 + n2))
    }
}

/// Serializes the footer (filter handle, index handle, padding, magic).
pub fn encode_footer(filter: BlockHandle, index: BlockHandle) -> Vec<u8> {
    let mut out = Vec::with_capacity(FOOTER_SIZE);
    filter.encode_to(&mut out);
    index.encode_to(&mut out);
    out.resize(FOOTER_SIZE - 8, 0);
    out.extend_from_slice(&TABLE_MAGIC.to_le_bytes());
    out
}

/// Parses a footer into (filter handle, index handle).
pub fn decode_footer(data: &[u8]) -> Result<(BlockHandle, BlockHandle)> {
    if data.len() != FOOTER_SIZE {
        return Err(corruption("footer has wrong size"));
    }
    let magic = u64::from_le_bytes(data[FOOTER_SIZE - 8..].try_into().expect("8 bytes"));
    if magic != TABLE_MAGIC {
        return Err(corruption("bad table magic"));
    }
    let (filter, n) = BlockHandle::decode_from(data)?;
    let (index, _) = BlockHandle::decode_from(&data[n..])?;
    Ok((filter, index))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_roundtrip() {
        let h = BlockHandle {
            offset: 123456789,
            size: 4096,
        };
        let mut buf = Vec::new();
        h.encode_to(&mut buf);
        let (decoded, n) = BlockHandle::decode_from(&buf).unwrap();
        assert_eq!(decoded, h);
        assert_eq!(n, buf.len());
    }

    #[test]
    fn footer_roundtrip() {
        let filter = BlockHandle {
            offset: 1000,
            size: 64,
        };
        let index = BlockHandle {
            offset: 1069,
            size: 256,
        };
        let footer = encode_footer(filter, index);
        assert_eq!(footer.len(), FOOTER_SIZE);
        let (f, i) = decode_footer(&footer).unwrap();
        assert_eq!(f, filter);
        assert_eq!(i, index);
    }

    #[test]
    fn footer_rejects_bad_magic_and_size() {
        let mut footer = encode_footer(BlockHandle::default(), BlockHandle::default());
        assert!(decode_footer(&footer[1..]).is_err());
        footer[FOOTER_SIZE - 1] ^= 0xff;
        assert!(decode_footer(&footer).is_err());
    }
}
