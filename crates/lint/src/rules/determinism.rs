//! Rule `determinism`: no wall-clock time, no unseeded entropy, no
//! hash-order-dependent iteration in the simulated-time crates.
//!
//! The paper's UDC/LDC comparisons — and the chaos harness's
//! `(seed, crash point)` replay recipes — are only meaningful if every
//! nanosecond and every random draw flows from the `ldc-ssd` virtual
//! clock and explicit seeds. Scope: non-test code in `ssd`, `lsm`,
//! `core`, `chaos`, `workload`. Shims and `bench` are exempt (the
//! criterion shim legitimately measures host time).

use crate::diag::Diagnostic;
use crate::lexer::{token_positions, SourceView};

/// Stable rule id.
pub const RULE: &str = "determinism";

/// Crates whose `src/` must be deterministic.
pub const SCOPED_CRATES: &[&str] = &["ssd", "lsm", "core", "chaos", "workload"];

/// Forbidden tokens and the fix to suggest.
const FORBIDDEN: &[(&str, &str)] = &[
    (
        "Instant::now",
        "use the ldc-ssd virtual clock (`device.clock().now()`) so time is simulated",
    ),
    (
        "SystemTime",
        "wall-clock time breaks virtual-time determinism; thread `ldc_ssd::Nanos` through instead",
    ),
    (
        "std::time",
        "only virtual time is allowed here; use `ldc_ssd::Nanos` / the device clock",
    ),
    (
        "thread_rng",
        "seed explicitly: `SmallRng::seed_from_u64(<config seed>)`",
    ),
    (
        "from_entropy",
        "seed explicitly: `SmallRng::seed_from_u64(<config seed>)`",
    ),
    (
        "rand::random",
        "draw from a seeded `SmallRng` owned by the caller",
    ),
    (
        "RandomState",
        "the default hasher is seeded per-process; use `BTreeMap` or a fixed-order structure",
    ),
    (
        "Utc::now",
        "wall-clock dates are nondeterministic; pass timestamps in explicitly",
    ),
    (
        "Local::now",
        "wall-clock dates are nondeterministic; pass timestamps in explicitly",
    ),
];

/// Chained-consumer names that make HashMap iteration order-insensitive.
const ORDER_INSENSITIVE: &[&str] = &[
    ".sum()",
    ".count()",
    ".min()",
    ".max()",
    ".min_by_key(",
    ".max_by_key(",
    ".min_by(",
    ".max_by(",
    ".any(",
    ".all(",
    "sort",     // `.sort()`, `.sort_unstable_by_key(...)` on the collected Vec
    "BTreeMap", // re-collected into an ordered map
    "BTreeSet",
    "BinaryHeap",
];

/// Is `path` (workspace-relative, `/`-separated) in this rule's scope?
pub fn in_scope(path: &str) -> bool {
    SCOPED_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")))
}

/// Checks one file. `path` is workspace-relative.
pub fn check_file(path: &str, view: &SourceView) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for &(needle, fix) in FORBIDDEN {
        for at in token_positions(&view.code, needle) {
            if needle == "std::time" {
                // `std::time::Duration` is a plain value type and is fine.
                if view.code[at..].starts_with("std::time::Duration") {
                    continue;
                }
            }
            let line = view.line_of(at);
            if view.is_test_line(line) || view.is_suppressed(line, RULE) {
                continue;
            }
            out.push(Diagnostic::error(
                path,
                line,
                RULE,
                format!("forbidden nondeterminism source `{needle}`"),
                fix,
            ));
        }
    }
    out.extend(check_hashmap_iteration(path, view));
    out
}

/// Flags iteration over identifiers declared as `HashMap` in this file
/// unless the chain feeds an order-insensitive consumer or is sorted
/// immediately afterwards.
fn check_hashmap_iteration(path: &str, view: &SourceView) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let names = hashmap_names(&view.code);
    for name in &names {
        for at in token_positions(&view.code, name) {
            let Some(iter_end) = iteration_call_end(&view.code, at + name.len()) else {
                continue;
            };
            let line = view.line_of(at);
            if view.is_test_line(line) || view.is_suppressed(line, RULE) {
                continue;
            }
            let window_end = (iter_end + 250).min(view.code.len());
            let window = &view.code[iter_end..window_end];
            if ORDER_INSENSITIVE.iter().any(|c| window.contains(c)) {
                continue;
            }
            out.push(Diagnostic::error(
                path,
                line,
                RULE,
                format!("iteration over `HashMap` `{name}` feeds an order-sensitive path"),
                "sort the collected result, use a BTreeMap, or suppress with \
                 `// ldc-lint: allow(determinism) — <why order cannot leak>`",
            ));
        }
    }
    out
}

/// Identifiers declared with a `HashMap` type (fields, lets, or
/// `= HashMap::new()` initialisers) anywhere in the file.
fn hashmap_names(code: &str) -> Vec<String> {
    let mut names = Vec::new();
    for at in token_positions(code, "HashMap") {
        // Look back to the start of the declaration (`;`, `{`, `(`, `,`).
        let stmt_start = code[..at]
            .rfind([';', '{', '(', ','])
            .map(|p| p + 1)
            .unwrap_or(0);
        let prefix = &code[stmt_start..at];
        // `name : [wrappers<] HashMap <` or `let [mut] name ... = HashMap::new`
        let Some(colon_or_eq) = prefix.find([':', '=']) else {
            continue;
        };
        let head = prefix[..colon_or_eq].trim();
        let name = head
            .rsplit(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .next()
            .unwrap_or("");
        if !name.is_empty()
            && name != "mut"
            && !name.chars().next().is_some_and(|c| c.is_ascii_digit())
            && !names.iter().any(|n| n == name)
        {
            names.push(name.to_string());
        }
    }
    names
}

/// If the code after an identifier is a (possibly chained) call ending in
/// `.iter()`, `.keys()`, `.values()`, `.drain()`, or `.into_iter()`, the
/// return value is the offset just past that call's `(`; otherwise `None`.
/// Accepts up to two plain accessor calls in between (e.g.
/// `files.read().keys()`).
fn iteration_call_end(code: &str, mut pos: usize) -> Option<usize> {
    const ITERS: &[&str] = &["iter", "keys", "values", "drain", "into_iter", "iter_mut"];
    let bytes = code.as_bytes();
    for _hop in 0..3 {
        // Expect `.` (skipping whitespace).
        while bytes.get(pos).is_some_and(|b| b.is_ascii_whitespace()) {
            pos += 1;
        }
        if bytes.get(pos) != Some(&b'.') {
            return None;
        }
        pos += 1;
        while bytes.get(pos).is_some_and(|b| b.is_ascii_whitespace()) {
            pos += 1;
        }
        let start = pos;
        while bytes
            .get(pos)
            .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
        {
            pos += 1;
        }
        let method = &code[start..pos];
        while bytes.get(pos).is_some_and(|b| b.is_ascii_whitespace()) {
            pos += 1;
        }
        if bytes.get(pos) != Some(&b'(') {
            return None; // field access or something else
        }
        // Skip to the matching `)` (iteration methods take no nested parens
        // in practice; accessors like `.read()` are empty).
        let mut depth = 0usize;
        while pos < bytes.len() {
            match bytes[pos] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        pos += 1;
                        break;
                    }
                }
                _ => {}
            }
            pos += 1;
        }
        if ITERS.contains(&method) {
            return Some(pos);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        check_file("crates/lsm/src/x.rs", &SourceView::new(src))
    }

    #[test]
    fn flags_wall_clock_and_entropy() {
        let d = run("fn f() { let t = Instant::now(); let r = thread_rng(); }");
        assert_eq!(d.len(), 2);
        assert!(d[0].message.contains("Instant::now"));
    }

    #[test]
    fn duration_is_allowed() {
        assert!(run("fn f(d: std::time::Duration) {}").is_empty());
        assert_eq!(run("fn f() { std::time::SystemTime::now(); }").len(), 2);
    }

    #[test]
    fn test_code_and_suppressions_are_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t() { Instant::now(); } }\n";
        assert!(run(src).is_empty());
        let src = "// ldc-lint: allow(determinism) — fixture clock\nfn f() { Instant::now(); }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn hashmap_iteration_flagged_unless_order_insensitive() {
        let src = "struct S { map: HashMap<u64, u32> }\nfn f(s: &S) { for k in s.map.keys() { emit(k); } }\n";
        assert_eq!(run(src).len(), 1);
        let ok = "struct S { map: HashMap<u64, u32> }\nfn g(s: &S) -> u64 { s.map.values().map(|v| *v as u64).sum() }\n";
        assert!(run(ok).is_empty());
        let sorted = "struct S { map: HashMap<u64, u32> }\nfn h(s: &S) { let mut v: Vec<_> = s.map.keys().collect(); v.sort(); }\n";
        assert!(run(sorted).is_empty());
    }
}
