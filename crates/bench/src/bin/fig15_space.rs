//! Fig 15 — space overhead of LDC's delayed slice garbage collection.
//!
//! Paper: LDC's frozen region keeps some already-merged slices around, but
//! total space lands only 3.37–10.0% above UDC (6.78% average) — far below
//! the 25% worst-case bound of §III-D.

use ldc_bench::prelude::*;

fn main() {
    let args = CommonArgs::parse(20_000);
    let multipliers = [1u64, 2, 3, 4, 5, 6];
    let mut rows = Vec::new();
    for &m in &multipliers {
        let ops = args.ops * m;
        let spec = WorkloadSpec::read_write_balanced(ops)
            .with_codec(args.codec())
            .with_seed(args.seed);
        // Finer geometry so several levels are genuinely full: the paper's
        // 3-10% overhead is a deep-tree property (pending frozen data is
        // ~one upper level's worth, i.e. ~1/k of the store).
        let mut options = paper_scaled_options();
        options.memtable_bytes = 128 << 10;
        options.sstable_bytes = 128 << 10;
        options.l1_capacity_bytes = 512 << 10;
        let (udc, ldc) = run_both(&options, &SsdConfig::default(), &spec);
        // A second LDC run with a tight frozen-region budget: trades some
        // reclaimed I/O savings for the paper's single-digit space overhead.
        let mut tight = StoreConfig::new(System::Ldc);
        tight.options = options.clone();
        tight.space_gc_ratio = Some(0.10);
        let ldc_tight = run_experiment(&tight, &spec);
        let overhead = ldc.space_bytes as f64 / udc.space_bytes.max(1) as f64 - 1.0;
        let overhead_tight = ldc_tight.space_bytes as f64 / udc.space_bytes.max(1) as f64 - 1.0;
        rows.push(vec![
            ops.to_string(),
            mib(udc.space_bytes),
            mib(ldc.space_bytes),
            format!("{:+.2}%", overhead * 100.0),
            mib(ldc.frozen_bytes),
            format!("{:+.2}%", overhead_tight * 100.0),
        ]);
    }
    print_table(
        args.csv,
        "Fig 15: final space consumption (RWB)",
        &[
            "requests",
            "UDC (MiB)",
            "LDC (MiB)",
            "LDC overhead",
            "LDC frozen",
            "tight-GC overhead",
        ],
        &rows,
    );
    println!(
        "\nPaper reference: +3.37%..+10.0% (avg +6.78%). The default GC \
         budget caps the frozen region at the paper's 25% worst-case bound \
         (S III-D); the tight budget (0.10) lands in the paper's measured \
         single-digit range at the cost of some reclaimed-I/O savings — \
         see EXPERIMENTS.md for the tradeoff discussion."
    );
}
