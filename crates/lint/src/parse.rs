//! Item-level parsing over the [`SourceView`](crate::lexer::SourceView)
//! lexer: functions, their impl-block owners, parameter lists, and return
//! types.
//!
//! This is deliberately not a full Rust parser. The workspace-graph rules
//! (`determinism_taint`, `must_use_result`, `lock_order`) only need to
//! know *which* functions exist, *who* owns them (`impl Type`), whether
//! they return something, and where their bodies are — all of which falls
//! out of brace/angle matching over blanked code. Macros, trait bounds,
//! and expression grammar are never interpreted.

use crate::lexer::{match_brace, SourceView};

/// One `fn` item found in a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Owning `impl` type (last path segment, generics stripped), if the
    /// function sits inside an `impl` block. For `impl Trait for Type`
    /// this is `Type`.
    pub qual: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the item lies inside a test-only region.
    pub is_test: bool,
    /// Raw parameter-list text (blanked), parens stripped.
    pub params: String,
    /// Return-type text after `->` (blanked), empty when the function
    /// returns `()`.
    pub ret: String,
    /// Byte range of the body in `view.code`, `open_brace..=close_brace`.
    /// `None` for bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
}

impl FnItem {
    /// `Type::name` when owned by an impl block, else the bare name.
    pub fn qualified(&self) -> String {
        match &self.qual {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// All functions of one source file.
#[derive(Debug, Clone)]
pub struct FileIndex {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Crate the file belongs to (`crates/<name>/src/...`).
    pub crate_name: String,
    /// Functions in file order.
    pub fns: Vec<FnItem>,
}

/// Crate name out of a workspace-relative path (`crates/lsm/src/db.rs` →
/// `lsm`); empty for paths outside `crates/`.
pub fn crate_of(path: &str) -> String {
    path.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
        .to_string()
}

/// Parses one file into its function index.
pub fn parse_file(path: &str, view: &SourceView) -> FileIndex {
    let code = &view.code;
    let bytes = code.as_bytes();

    // Impl regions: `(type name, body start, body end)`.
    let impls = impl_regions(code);

    let mut fns = Vec::new();
    for at in crate::lexer::token_positions(code, "fn") {
        let line = view.line_of(at);
        // Name.
        let mut i = at + 2;
        while bytes.get(i).is_some_and(|b| b.is_ascii_whitespace()) {
            i += 1;
        }
        let name_start = i;
        while bytes
            .get(i)
            .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
        {
            i += 1;
        }
        if i == name_start {
            continue; // `fn` inside a type like `fn(...)` pointer
        }
        let name = code[name_start..i].to_string();
        // Generics.
        while bytes.get(i).is_some_and(|b| b.is_ascii_whitespace()) {
            i += 1;
        }
        if bytes.get(i) == Some(&b'<') {
            i = skip_angles(bytes, i);
        }
        while bytes.get(i).is_some_and(|b| b.is_ascii_whitespace()) {
            i += 1;
        }
        // Parameters.
        if bytes.get(i) != Some(&b'(') {
            continue; // not a function item after all
        }
        let params_open = i;
        let params_close = match_paren(bytes, params_open);
        let params = code[params_open + 1..params_close.min(code.len())]
            .trim()
            .to_string();
        i = (params_close + 1).min(bytes.len());
        // Return type: up to `{`, `;`, or a top-level `where`.
        let mut ret = String::new();
        let sig_rest_start = i;
        let mut body_open = None;
        while i < bytes.len() {
            match bytes[i] {
                b'{' => {
                    body_open = Some(i);
                    break;
                }
                b';' => break,
                b'<' => i = skip_angles(bytes, i),
                _ => i += 1,
            }
        }
        let sig_rest = &code[sig_rest_start..i.min(code.len())];
        if let Some(arrow) = sig_rest.find("->") {
            let after = &sig_rest[arrow + 2..];
            let end = after.find(" where ").unwrap_or(after.len());
            ret = after[..end].trim().to_string();
        }
        let body = body_open.map(|open| (open, match_brace(bytes, open)));
        let qual = impls
            .iter()
            .filter(|(_, s, e)| at > *s && at < *e)
            .map(|(t, s, _)| (t.clone(), *s))
            // Innermost enclosing impl wins (nested impls don't occur in
            // practice, but be deterministic about it).
            .max_by_key(|(_, s)| *s)
            .map(|(t, _)| t);
        fns.push(FnItem {
            name,
            qual,
            line,
            is_test: view.is_test_line(line),
            params,
            ret,
            body,
        });
    }
    FileIndex {
        path: path.to_string(),
        crate_name: crate_of(path),
        fns,
    }
}

/// Every `impl` block: `(type, body start, body end)`.
fn impl_regions(code: &str) -> Vec<(String, usize, usize)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for at in crate::lexer::token_positions(code, "impl") {
        let mut i = at + 4;
        while bytes.get(i).is_some_and(|b| b.is_ascii_whitespace()) {
            i += 1;
        }
        if bytes.get(i) == Some(&b'<') {
            i = skip_angles(bytes, i);
        }
        // Header text up to the opening brace (skipping generics so a
        // `Fn() -> T` bound cannot hide the brace).
        let header_start = i;
        let mut open = None;
        while i < bytes.len() {
            match bytes[i] {
                b'{' => {
                    open = Some(i);
                    break;
                }
                b';' => break,
                b'<' => i = skip_angles(bytes, i),
                _ => i += 1,
            }
        }
        let Some(open) = open else { continue };
        let header = &code[header_start..open];
        // `impl Trait for Type` → Type; `impl Type` → Type. Strip a
        // trailing `where` clause first.
        let header = header.split(" where ").next().unwrap_or(header);
        let ty = match header.find(" for ") {
            Some(p) => &header[p + 5..],
            None => header,
        };
        let ty = last_path_segment(ty);
        if ty.is_empty() {
            continue;
        }
        out.push((ty, open, match_brace(bytes, open)));
    }
    out
}

/// `a::b::Type<T>` / `&mut Type` → `Type`.
fn last_path_segment(ty: &str) -> String {
    let ty = ty.trim();
    let ty = ty.split('<').next().unwrap_or(ty).trim();
    ty.rsplit("::")
        .next()
        .unwrap_or(ty)
        .trim_start_matches(['&', ' '])
        .trim()
        .trim_start_matches("mut ")
        .trim()
        .to_string()
}

/// Given the offset of a `<`, returns the offset one past its matching
/// `>`. The `>` of a `->` return-type arrow inside bounds (e.g.
/// `F: Fn() -> u64`) does not close an angle.
fn skip_angles(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'<' => depth += 1,
            b'>' if i > 0 && bytes[i - 1] == b'-' => {}
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            // A stray semicolon/brace means this `<` was a comparison,
            // not generics; bail rather than eat the rest of the file.
            b'{' | b';' => return open + 1,
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

/// Given the offset of a `(`, returns the offset of its matching `)`.
fn match_paren(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    bytes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> FileIndex {
        parse_file("crates/lsm/src/x.rs", &SourceView::new(src))
    }

    #[test]
    fn free_and_impl_fns_with_quals() {
        let src = "fn free(a: u32) -> u64 { a as u64 }\n\
                   struct S;\n\
                   impl S {\n    fn method(&self) {}\n}\n\
                   impl std::fmt::Display for S {\n    fn fmt(&self, f: &mut F) -> R { todo!() }\n}\n";
        let idx = parse(src);
        let names: Vec<(String, Option<String>)> = idx
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.qual.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None),
                ("method".into(), Some("S".into())),
                ("fmt".into(), Some("S".into())),
            ]
        );
        assert_eq!(idx.fns[0].ret, "u64");
        assert_eq!(idx.fns[1].ret, "");
        assert_eq!(idx.crate_name, "lsm");
    }

    #[test]
    fn generic_fns_and_closure_bounds_parse() {
        let src = "fn apply<F: Fn(u32) -> u64>(f: F) -> u64 { f(1) }\n\
                   impl<T: Clone> Wrap<T> {\n    fn get(&self) -> T { self.0.clone() }\n}\n";
        let idx = parse(src);
        assert_eq!(idx.fns[0].name, "apply");
        assert_eq!(idx.fns[0].ret, "u64");
        assert_eq!(idx.fns[1].qual.as_deref(), Some("Wrap"));
        assert_eq!(idx.fns[1].ret, "T");
    }

    #[test]
    fn trait_decls_have_no_body_and_tests_are_marked() {
        let src = "trait T {\n    fn decl(&self) -> Result<(), E>;\n}\n\
                   #[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let idx = parse(src);
        assert_eq!(idx.fns[0].name, "decl");
        assert!(idx.fns[0].body.is_none());
        assert!(idx.fns[0].ret.contains("Result"));
        assert!(idx.fns[1].is_test);
    }

    #[test]
    fn where_clause_does_not_leak_into_ret() {
        let src = "fn f<T>(x: T) -> Vec<T> where T: Clone { vec![x] }\n";
        let idx = parse(src);
        assert_eq!(idx.fns[0].ret, "Vec<T>");
        assert!(idx.fns[0].body.is_some());
    }
}
