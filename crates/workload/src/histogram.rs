//! Latency histogram with high-percentile queries.
//!
//! A log-linear layout (like HDR histograms): 64 power-of-two magnitude
//! bands, each split into 32 linear sub-buckets, giving <= ~3% relative
//! error on any recorded nanosecond latency while using a few KiB. Fig 8's
//! P90–P99.99 series comes straight out of [`Histogram::percentile`].

const SUB_BUCKETS: usize = 32;
const SUB_BITS: u32 = 5;

/// Latency histogram over u64 nanoseconds.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
    min: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; 64 * SUB_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    fn index_for(value: u64) -> usize {
        let v = value.max(1);
        let magnitude = 63 - v.leading_zeros();
        if magnitude < SUB_BITS {
            return v as usize;
        }
        let shift = magnitude - SUB_BITS;
        let sub = ((v >> shift) as usize) & (SUB_BUCKETS - 1);
        ((magnitude - SUB_BITS + 1) as usize) * SUB_BUCKETS + sub
    }

    fn bucket_value(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let band = index / SUB_BUCKETS;
        let sub = index % SUB_BUCKETS;
        let shift = (band - 1) as u32;
        ((SUB_BUCKETS + sub) as u64) << shift
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = Self::index_for(value);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Value at percentile `p` in [0, 100]; approximate to bucket
    /// resolution (<= ~3% relative error). 0 if empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if p >= 100.0 {
            return self.max;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= rank {
                return Self::bucket_value(i).max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_value() {
        let mut h = Histogram::new();
        h.record(1000);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 1000.0);
        assert_eq!(h.min(), 1000);
        assert_eq!(h.max(), 1000);
        let p = h.percentile(50.0);
        assert!((970..=1030).contains(&p), "p50 {p}");
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (p, expect) in [(50.0, 50_000u64), (90.0, 90_000), (99.0, 99_000)] {
            let got = h.percentile(p);
            let err = (got as f64 - expect as f64).abs() / expect as f64;
            assert!(err < 0.05, "p{p}: got {got}, expect ~{expect}");
        }
        assert_eq!(h.percentile(100.0), 100_000);
    }

    #[test]
    fn tail_is_captured() {
        // 999 fast ops and one slow outlier: with nearest-rank semantics the
        // outlier is the 1000th ordered sample, so p99.95 must surface it
        // while p90 stays clean.
        let mut h = Histogram::new();
        for _ in 0..999 {
            h.record(100);
        }
        h.record(1_000_000);
        let tail = h.percentile(99.95);
        assert!(tail > 900_000, "tail percentile missed the outlier: {tail}");
        let p90 = h.percentile(90.0);
        assert!(p90 <= 110, "p90 polluted by outlier: {p90}");
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn relative_error_is_bounded() {
        for magnitude in [5u64, 50, 500, 5_000, 50_000, 500_000, 5_000_000] {
            let mut h = Histogram::new();
            h.record(magnitude);
            let got = h.percentile(50.0);
            let err = (got as f64 - magnitude as f64).abs() / magnitude as f64;
            assert!(err <= 0.04, "value {magnitude}: got {got} (err {err})");
        }
    }

    #[test]
    fn empty_percentiles_are_zero_at_every_rank() {
        let h = Histogram::new();
        for p in [0.0, 0.1, 50.0, 99.99, 100.0] {
            assert_eq!(h.percentile(p), 0, "p{p} of empty");
        }
        assert_eq!(h.min(), 0, "empty min must not leak the u64::MAX sentinel");
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let mut h = Histogram::new();
        h.record(777);
        for p in [0.0, 50.0, 99.0, 100.0] {
            let got = h.percentile(p);
            assert!((750..=810).contains(&got), "p{p} = {got}");
        }
    }

    #[test]
    fn u64_max_is_recorded_without_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), u64::MAX);
        // p100 returns the exact max; interior percentiles stay clamped to
        // the observed range, and the u128 sum keeps the mean finite.
        assert_eq!(h.percentile(100.0), u64::MAX);
        let p99 = h.percentile(99.9);
        assert!((h.min()..=h.max()).contains(&p99), "p99.9 = {p99}");
        assert!(h.mean().is_finite() && h.mean() > 0.0);
    }

    #[test]
    fn zero_values_are_recorded() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 0);
    }
}
