//! Experiment harness: build a store, run a workload, collect every metric
//! the paper's figures need.

use std::sync::Arc;

use ldc_core::{CompactionMode, LdcConfig, LdcDb};
use ldc_lsm::db::DbStats;
use ldc_lsm::Options;
use ldc_obs::{Event, RingBufferSink};
use ldc_ssd::{DeviceSnapshot, IoStatsSnapshot, SsdConfig, TimeCategory};
use ldc_workload::{preload_workload, run_measured, RunReport, WorkloadSpec};

use crate::adapter::DbAdapter;

/// Which compaction mechanism to benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// The paper's mechanism.
    Ldc,
    /// The LevelDB baseline.
    Udc,
}

impl System {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            System::Ldc => "LDC",
            System::Udc => "UDC",
        }
    }
}

/// Store configuration for one experiment run.
#[derive(Clone)]
pub struct StoreConfig {
    /// LDC or UDC.
    pub system: System,
    /// Engine options.
    pub options: Options,
    /// Simulated-SSD profile.
    pub ssd: SsdConfig,
    /// Fixed SliceLink threshold (None = fan-out); LDC only.
    pub slice_link_threshold: Option<usize>,
    /// Self-adaptive threshold controller; LDC only.
    pub adaptive_threshold: bool,
    /// Frozen-region GC budget override; LDC only.
    pub space_gc_ratio: Option<f64>,
    /// Attach a ring-buffer event sink and export the measured window's
    /// compaction/stall timeline in [`ExperimentResult::events`].
    pub trace_events: bool,
}

/// Ring capacity when [`StoreConfig::trace_events`] is on — generous enough
/// that laptop-scale runs never wrap (each event is a small flat record).
const EVENT_RING_CAPACITY: usize = 1 << 20;

/// Engine geometry for experiment runs: the paper's shape (fan-out 10,
/// 10 bits/key, equal memtable/SSTable size) scaled to 1/4 size so that a
/// laptop-scale op count produces the same tree depth and rotation
/// frequency *relative to the data size* as the paper's 10-30 M-request
/// runs. DESIGN.md §1 documents this substitution.
pub fn paper_scaled_options() -> Options {
    Options {
        memtable_bytes: 512 << 10,
        sstable_bytes: 512 << 10,
        l1_capacity_bytes: 2 << 20,
        // The paper's testbed had enough RAM that the OS page cache covered
        // most of the store (reads cost ~RAM once warm); give the block
        // cache the same role at our scale.
        block_cache_bytes: 64 << 20,
        ..Options::default()
    }
}

impl StoreConfig {
    /// Paper-shaped (scaled) configuration for `system`.
    pub fn new(system: System) -> Self {
        Self {
            system,
            options: paper_scaled_options(),
            ssd: SsdConfig::default(),
            slice_link_threshold: None,
            adaptive_threshold: false,
            space_gc_ratio: None,
            trace_events: false,
        }
    }

    fn build(&self) -> (LdcDb, Option<Arc<RingBufferSink>>) {
        let mode = match self.system {
            System::Udc => CompactionMode::Udc,
            System::Ldc => {
                let mut config = LdcConfig {
                    slice_link_threshold: self.slice_link_threshold,
                    adaptive: self.adaptive_threshold,
                    ..LdcConfig::default()
                };
                if let Some(ratio) = self.space_gc_ratio {
                    config.space_gc_ratio = ratio;
                }
                CompactionMode::Ldc(config)
            }
        };
        let mut builder = LdcDb::builder()
            .options(self.options.clone())
            .ssd_config(self.ssd.clone())
            .mode(mode);
        let sink = self
            .trace_events
            .then(|| Arc::new(RingBufferSink::new(EVENT_RING_CAPACITY)));
        if let Some(sink) = &sink {
            builder = builder.event_sink(sink.clone());
        }
        (builder.build().expect("store construction"), sink)
    }
}

/// Everything measured over one run's measured window.
pub struct ExperimentResult {
    /// Which system ran.
    pub system: System,
    /// Latency/throughput report from the runner.
    pub report: RunReport,
    /// Device traffic during the measured window only.
    pub io: IoStatsSnapshot,
    /// Device traffic including preload.
    pub total_io: IoStatsSnapshot,
    /// Device state at the end (wear, FTL counters).
    pub device: DeviceSnapshot,
    /// Engine counters.
    pub db_stats: DbStats,
    /// Live file bytes at the end (Fig 15).
    pub space_bytes: u64,
    /// Bytes in active level files at the end.
    pub level_bytes: u64,
    /// Bytes pinned in the frozen region at the end (LDC only).
    pub frozen_bytes: u64,
    /// Data-block reads from the device during the measured window (Fig 13).
    pub block_reads: u64,
    /// (category label, fraction of virtual time) — Table I.
    pub time_breakdown: Vec<(&'static str, f64)>,
    /// Structured event timeline for the measured window (flushes, merges,
    /// links, stalls, GC, ...). Empty unless [`StoreConfig::trace_events`].
    pub events: Vec<Event>,
}

impl ExperimentResult {
    /// Compaction bytes (read + write) during the measured window.
    pub fn compaction_io_bytes(&self) -> u64 {
        self.io.compaction_read_bytes() + self.io.compaction_write_bytes()
    }

    /// Throughput in operations per virtual second.
    pub fn throughput(&self) -> f64 {
        self.report.throughput()
    }
}

/// Builds a store from `config`, preloads `spec`, then measures the main
/// window. Deterministic for fixed seeds.
pub fn run_experiment(config: &StoreConfig, spec: &WorkloadSpec) -> ExperimentResult {
    let (db, sink) = config.build();
    let mut adapter = DbAdapter::new(db);
    preload_workload(spec, &mut adapter).expect("preload");
    // Settle any compaction debt from the preload so it cannot pollute the
    // measured window.
    adapter.db_mut().drain_background();

    let device = adapter.db().device().clone();
    let io_before = device.io_stats();
    let misses_before = adapter.db().block_cache_counters().misses;
    device.ledger().reset();

    let clock = device.clock().clone();
    let window_start = clock.now();
    let mut report = run_measured(spec, &mut adapter, &clock).expect("measured run");
    // Pending background work belongs to this window's total time.
    report.duration_nanos += adapter.db_mut().drain_background();

    let io_after = device.io_stats();
    let misses_after = adapter.db().block_cache_counters().misses;
    let ledger = device.ledger();
    let mut time_breakdown: Vec<(&'static str, f64)> = TimeCategory::ALL
        .iter()
        .map(|&c| (c.label(), ledger.fraction(c)))
        .collect();
    // Fold anything unaccounted into "Others".
    let accounted: f64 = time_breakdown.iter().map(|(_, f)| f).sum();
    if let Some(last) = time_breakdown.last_mut() {
        last.1 += (1.0 - accounted).max(0.0);
    }

    ExperimentResult {
        system: config.system,
        report,
        io: io_after.delta_since(&io_before),
        total_io: io_after,
        device: device.snapshot(),
        db_stats: adapter.db().stats(),
        space_bytes: adapter.db().space_bytes(),
        level_bytes: {
            let v = adapter.db().engine_ref().version();
            (0..v.num_levels()).map(|l| v.level_bytes(l)).sum()
        },
        frozen_bytes: adapter.db().engine_ref().version().frozen_bytes(),
        block_reads: misses_after - misses_before,
        time_breakdown,
        events: sink
            .map(|s| {
                s.events()
                    .into_iter()
                    .filter(|e| e.end_nanos >= window_start)
                    .collect()
            })
            .unwrap_or_default(),
    }
}

/// Runs the same spec on both systems (UDC first), for side-by-side tables.
pub fn run_both(
    options: &Options,
    ssd: &SsdConfig,
    spec: &WorkloadSpec,
) -> (ExperimentResult, ExperimentResult) {
    let mut udc = StoreConfig::new(System::Udc);
    udc.options = options.clone();
    udc.ssd = ssd.clone();
    let mut ldc = StoreConfig::new(System::Ldc);
    ldc.options = options.clone();
    ldc.ssd = ssd.clone();
    (run_experiment(&udc, spec), run_experiment(&ldc, spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> WorkloadSpec {
        WorkloadSpec::read_write_balanced(2000)
            .with_key_space(1000)
            .with_codec(ldc_workload::KeyCodec::new(16, 128))
    }

    fn quick_options() -> Options {
        Options::small_for_tests()
    }

    #[test]
    fn experiment_collects_all_metrics() {
        let mut config = StoreConfig::new(System::Ldc);
        config.options = quick_options();
        let result = run_experiment(&config, &quick_spec());
        assert_eq!(result.report.ops, 2000);
        assert!(result.throughput() > 0.0);
        assert!(result.io.total_write_bytes() > 0);
        assert!(result.space_bytes > 0);
        let total: f64 = result.time_breakdown.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-6, "fractions sum to {total}");
    }

    #[test]
    fn measured_window_excludes_preload_io() {
        let mut config = StoreConfig::new(System::Udc);
        config.options = quick_options();
        let result = run_experiment(&config, &quick_spec());
        assert!(
            result.io.total_write_bytes() < result.total_io.total_write_bytes(),
            "window should exclude preload traffic"
        );
    }

    #[test]
    fn traced_run_exports_measured_window_events() {
        let mut config = StoreConfig::new(System::Ldc);
        config.options = quick_options();
        config.trace_events = true;
        let result = run_experiment(&config, &quick_spec());
        assert!(!result.events.is_empty(), "traced run exported no events");
        assert!(
            result.events.iter().any(|e| e.kind.is_compaction()),
            "timeline has no compaction events"
        );
        // The exported timeline covers only the measured window: every
        // event ends at or after the first one begins, and the preload's
        // flush storm (which dwarfs the window's) is filtered out.
        assert!(
            (result
                .events
                .iter()
                .filter(|e| e.kind == ldc_obs::EventKind::Flush)
                .count() as u64)
                <= result.db_stats.flushes,
            "more flush events than lifetime flushes"
        );
        // Untraced runs stay allocation-free: no events.
        config.trace_events = false;
        assert!(run_experiment(&config, &quick_spec()).events.is_empty());
    }

    #[test]
    fn run_both_returns_matching_workloads() {
        let (udc, ldc) = run_both(&quick_options(), &SsdConfig::default(), &quick_spec());
        assert_eq!(udc.system, System::Udc);
        assert_eq!(ldc.system, System::Ldc);
        assert_eq!(udc.report.ops, ldc.report.ops);
        assert!(udc.db_stats.links == 0);
    }
}
