//! Structured event records.

use crate::json;

/// Virtual-clock nanoseconds (matches `ldc-ssd`'s time base).
pub type Nanos = u64;

/// What kind of background action an [`Event`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Memtable flushed to an L0 table.
    Flush,
    /// Classic upper-level driven (LevelDB-style) merge.
    UdcMerge,
    /// A file moved down a level without rewriting.
    TrivialMove,
    /// LDC phase one: a file linked into slices of the level below.
    LdcLink,
    /// LDC phase two: linked slices merged in the lower level.
    LdcMerge,
    /// A foreground write blocked until background work caught up.
    Stall,
    /// A foreground write was delayed (L0 soft limit).
    Slowdown,
    /// A write-ahead-log sync.
    WalSync,
    /// SSD garbage collection relocated pages / erased blocks.
    SsdGc,
    /// The adaptive SliceLink threshold changed.
    ThresholdAdapt,
    /// A fault-injection harness perturbed storage (crash, torn write,
    /// bit flip, forced I/O error). `input_bytes` carries the op index
    /// at which the fault fired.
    FaultInjected,
    /// A database open replayed logs / recovered a manifest.
    /// `input_files` = WAL records replayed, `output_files` = files
    /// quarantined, `input_bytes` = torn tail bytes discarded.
    Recovery,
    /// A transient read error was retried at the storage boundary.
    /// `input_files` = attempt number (1-based), `input_bytes` = backoff
    /// nanoseconds charged to the virtual clock before the retry.
    Retry,
    /// The online scrubber finished verifying one table.
    /// `level` = table level (`None` for frozen tables), `input_files` = 1,
    /// `input_bytes` = bytes verified, `output_files` = blocks verified.
    ScrubProgress,
    /// The online scrubber found corruption in a table.
    /// `level` = table level when known, `input_bytes` = corrupt offset.
    ScrubCorruption,
    /// A corrupt SSTable was quarantined (renamed and dropped from the
    /// live version). `level` = level it was dropped from, `input_files`
    /// = 1, `input_bytes` = file size (the keys-at-risk upper bound).
    Quarantine,
    /// A `repair_db` pass rebuilt the manifest from surviving files.
    /// `input_files` = tables salvaged, `output_files` = files
    /// quarantined, `output_bytes` = WAL records salvaged into new
    /// tables.
    Repair,
    /// A group-commit leader coalesced several writers' batches into one
    /// WAL append. `input_files` = batches in the group, `input_bytes` =
    /// merged batch bytes. Emitted only for groups larger than one, so
    /// single-threaded traces are unchanged.
    GroupCommit,
    /// An online checkpoint was created. `input_files` = SSTables linked
    /// into the checkpoint prefix, `input_bytes` = their total size.
    Checkpoint,
    /// One version edit was shipped onto an incremental backup stream.
    /// `input_files` = SSTables linked for this record, `input_bytes` =
    /// their total size.
    BackupShip,
    /// A follower applied one replicated version edit. `input_files` =
    /// new tables the edit added, `input_bytes` = the replication cursor
    /// after the apply.
    ReplApply,
}

impl EventKind {
    /// Every kind, in a stable order.
    pub const ALL: [EventKind; 21] = [
        EventKind::Flush,
        EventKind::UdcMerge,
        EventKind::TrivialMove,
        EventKind::LdcLink,
        EventKind::LdcMerge,
        EventKind::Stall,
        EventKind::Slowdown,
        EventKind::WalSync,
        EventKind::SsdGc,
        EventKind::ThresholdAdapt,
        EventKind::FaultInjected,
        EventKind::Recovery,
        EventKind::Retry,
        EventKind::ScrubProgress,
        EventKind::ScrubCorruption,
        EventKind::Quarantine,
        EventKind::Repair,
        EventKind::GroupCommit,
        EventKind::Checkpoint,
        EventKind::BackupShip,
        EventKind::ReplApply,
    ];

    /// Stable snake_case label (used in JSONL and reports).
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Flush => "flush",
            EventKind::UdcMerge => "udc_merge",
            EventKind::TrivialMove => "trivial_move",
            EventKind::LdcLink => "ldc_link",
            EventKind::LdcMerge => "ldc_merge",
            EventKind::Stall => "stall",
            EventKind::Slowdown => "slowdown",
            EventKind::WalSync => "wal_sync",
            EventKind::SsdGc => "ssd_gc",
            EventKind::ThresholdAdapt => "threshold_adapt",
            EventKind::FaultInjected => "fault_injected",
            EventKind::Recovery => "recovery",
            EventKind::Retry => "retry",
            EventKind::ScrubProgress => "scrub_progress",
            EventKind::ScrubCorruption => "scrub_corruption",
            EventKind::Quarantine => "quarantine",
            EventKind::Repair => "repair",
            EventKind::GroupCommit => "group_commit",
            EventKind::Checkpoint => "checkpoint",
            EventKind::BackupShip => "backup_ship",
            EventKind::ReplApply => "repl_apply",
        }
    }

    /// Inverse of [`EventKind::label`].
    pub fn parse(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.label() == label)
    }

    /// Whether this kind moves data between levels (compaction work).
    pub fn is_compaction(&self) -> bool {
        matches!(
            self,
            EventKind::Flush
                | EventKind::UdcMerge
                | EventKind::TrivialMove
                | EventKind::LdcLink
                | EventKind::LdcMerge
        )
    }
}

/// One background action, with enough context to attribute foreground
/// latency (Fig 1), phase time (Table 1), and byte movement (Fig 12).
///
/// Fields that do not apply to a kind stay at their zero defaults: a
/// `Stall` has no levels or bytes, a `ThresholdAdapt` reuses
/// `input_bytes`/`output_bytes` as old/new threshold values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Virtual-clock start.
    pub start_nanos: Nanos,
    /// Virtual-clock end (`>= start_nanos`).
    pub end_nanos: Nanos,
    /// Source level, when meaningful.
    pub level: Option<u32>,
    /// Destination level, when meaningful.
    pub output_level: Option<u32>,
    /// Input files consumed.
    pub input_files: u32,
    /// Output files produced.
    pub output_files: u32,
    /// Bytes read as compaction input (or old value for `ThresholdAdapt`).
    pub input_bytes: u64,
    /// Bytes written as compaction output (or new value for `ThresholdAdapt`).
    pub output_bytes: u64,
    /// Time spent reading inputs (Table 1's read phase).
    pub read_nanos: Nanos,
    /// Time spent merging in memory (Table 1's merge phase).
    pub merge_nanos: Nanos,
    /// Time spent writing outputs (Table 1's write phase).
    pub write_nanos: Nanos,
}

impl Event {
    /// A bare event covering `[start, end]`; remaining fields default
    /// to zero/`None` and can be filled in by the builder methods.
    pub fn span(kind: EventKind, start_nanos: Nanos, end_nanos: Nanos) -> Self {
        debug_assert!(end_nanos >= start_nanos, "event ends before it starts");
        Self {
            kind,
            start_nanos,
            end_nanos,
            level: None,
            output_level: None,
            input_files: 0,
            output_files: 0,
            input_bytes: 0,
            output_bytes: 0,
            read_nanos: 0,
            merge_nanos: 0,
            write_nanos: 0,
        }
    }

    /// Sets source and destination levels.
    pub fn levels(mut self, from: u32, to: u32) -> Self {
        self.level = Some(from);
        self.output_level = Some(to);
        self
    }

    /// Sets input/output file counts.
    pub fn files(mut self, input: u32, output: u32) -> Self {
        self.input_files = input;
        self.output_files = output;
        self
    }

    /// Sets input/output byte counts.
    pub fn bytes(mut self, input: u64, output: u64) -> Self {
        self.input_bytes = input;
        self.output_bytes = output;
        self
    }

    /// Sets the read/merge/write phase split.
    pub fn phases(mut self, read: Nanos, merge: Nanos, write: Nanos) -> Self {
        self.read_nanos = read;
        self.merge_nanos = merge;
        self.write_nanos = write;
        self
    }

    /// Wall (virtual) duration of the event.
    pub fn duration_nanos(&self) -> Nanos {
        self.end_nanos - self.start_nanos
    }

    /// Whether `[self.start, self.end]` intersects `[start, end]`.
    pub fn overlaps(&self, start_nanos: Nanos, end_nanos: Nanos) -> bool {
        self.start_nanos <= end_nanos && start_nanos <= self.end_nanos
    }

    /// Encodes as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push_str("{\"kind\":\"");
        out.push_str(self.kind.label());
        out.push('"');
        let field = |name: &str, value: u64, out: &mut String| {
            out.push_str(",\"");
            out.push_str(name);
            out.push_str("\":");
            out.push_str(&value.to_string());
        };
        field("start_nanos", self.start_nanos, &mut out);
        field("end_nanos", self.end_nanos, &mut out);
        if let Some(l) = self.level {
            field("level", u64::from(l), &mut out);
        }
        if let Some(l) = self.output_level {
            field("output_level", u64::from(l), &mut out);
        }
        field("input_files", u64::from(self.input_files), &mut out);
        field("output_files", u64::from(self.output_files), &mut out);
        field("input_bytes", self.input_bytes, &mut out);
        field("output_bytes", self.output_bytes, &mut out);
        field("read_nanos", self.read_nanos, &mut out);
        field("merge_nanos", self.merge_nanos, &mut out);
        field("write_nanos", self.write_nanos, &mut out);
        out.push('}');
        out
    }

    /// Decodes an object produced by [`Event::to_json`]. Returns `None`
    /// on malformed input or an unknown kind.
    pub fn from_json(text: &str) -> Option<Self> {
        let fields = json::parse_flat_object(text)?;
        let kind = match fields.get("kind")? {
            json::Value::Str(s) => EventKind::parse(s)?,
            json::Value::Num(_) => return None,
        };
        let num = |name: &str| -> Option<u64> {
            match fields.get(name) {
                Some(json::Value::Num(n)) => Some(*n),
                Some(json::Value::Str(_)) => None,
                None => Some(0),
            }
        };
        let opt_num = |name: &str| -> Option<Option<u32>> {
            match fields.get(name) {
                Some(json::Value::Num(n)) => Some(Some(u32::try_from(*n).ok()?)),
                Some(json::Value::Str(_)) => None,
                None => Some(None),
            }
        };
        Some(Self {
            kind,
            start_nanos: num("start_nanos")?,
            end_nanos: num("end_nanos")?,
            level: opt_num("level")?,
            output_level: opt_num("output_level")?,
            input_files: u32::try_from(num("input_files")?).ok()?,
            output_files: u32::try_from(num("output_files")?).ok()?,
            input_bytes: num("input_bytes")?,
            output_bytes: num("output_bytes")?,
            read_nanos: num("read_nanos")?,
            merge_nanos: num("merge_nanos")?,
            write_nanos: num("write_nanos")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(EventKind::parse("bogus"), None);
    }

    #[test]
    fn json_roundtrip_full() {
        let ev = Event::span(EventKind::LdcMerge, 100, 250)
            .levels(2, 3)
            .files(4, 6)
            .bytes(1 << 20, 2 << 20)
            .phases(40, 10, 100);
        let decoded = Event::from_json(&ev.to_json()).expect("roundtrip");
        assert_eq!(decoded, ev);
    }

    #[test]
    fn json_roundtrip_minimal() {
        let ev = Event::span(EventKind::Stall, 7, 7);
        let decoded = Event::from_json(&ev.to_json()).expect("roundtrip");
        assert_eq!(decoded, ev);
        assert_eq!(decoded.level, None);
        assert_eq!(decoded.duration_nanos(), 0);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(Event::from_json("").is_none());
        assert!(Event::from_json("{}").is_none());
        assert!(Event::from_json("{\"kind\":\"bogus\"}").is_none());
        assert!(Event::from_json("not json at all").is_none());
    }

    #[test]
    fn overlap_logic() {
        let ev = Event::span(EventKind::UdcMerge, 100, 200);
        assert!(ev.overlaps(150, 160)); // contained
        assert!(ev.overlaps(50, 100)); // touches start
        assert!(ev.overlaps(200, 300)); // touches end
        assert!(ev.overlaps(50, 300)); // contains
        assert!(!ev.overlaps(0, 99));
        assert!(!ev.overlaps(201, 400));
    }

    #[test]
    fn compaction_classification() {
        assert!(EventKind::LdcMerge.is_compaction());
        assert!(EventKind::Flush.is_compaction());
        assert!(!EventKind::Stall.is_compaction());
        assert!(!EventKind::SsdGc.is_compaction());
        assert!(!EventKind::FaultInjected.is_compaction());
        assert!(!EventKind::Recovery.is_compaction());
        assert!(!EventKind::Retry.is_compaction());
        assert!(!EventKind::ScrubProgress.is_compaction());
        assert!(!EventKind::ScrubCorruption.is_compaction());
        assert!(!EventKind::Quarantine.is_compaction());
        assert!(!EventKind::Repair.is_compaction());
    }

    #[test]
    fn chaos_kinds_roundtrip_json() {
        let ev = Event::span(EventKind::Recovery, 10, 20)
            .files(42, 1)
            .bytes(137, 0);
        assert_eq!(Event::from_json(&ev.to_json()), Some(ev));
        assert_eq!(
            EventKind::parse("fault_injected"),
            Some(EventKind::FaultInjected)
        );
    }
}
