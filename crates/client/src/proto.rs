//! `ldc-net` wire protocol: length-prefixed binary frames over TCP.
//!
//! Shared by `ldc-client` (this crate) and `ldc-server`. A frame is a
//! 4-byte little-endian body length followed by the body; bodies carry a
//! request id (so pipelined responses can return out of order), an opcode
//! or status byte, and op-specific payloads. Every decode path returns a
//! structured [`ProtoError`] — truncated frames, oversized length
//! prefixes, unknown opcodes, and trailing garbage are *protocol errors*,
//! never panics (the same discipline the WAL applies to torn tails).
//!
//! The [`Status`] taxonomy mirrors the engine's error split: transient
//! storage faults (`SsdError::TransientIo`) and admission rejections are
//! retryable; permanent storage errors, corruption, and argument errors
//! are not. Responses also carry the serving shard, the admission-queue
//! wait (host ns), and the engine service time (virtual ns) so tail
//! attribution extends over the wire.

use std::io::{Read, Write};

/// Hard ceiling on a frame body. A length prefix above this is a protocol
/// error (a torn or hostile stream), not an allocation request.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Sentinel shard id for responses not routed to a shard (protocol
/// errors, pings, stats).
pub const NO_SHARD: u16 = u16::MAX;

/// A client → server operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Insert or overwrite one key.
    Put {
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Point lookup.
    Get {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// Tombstone one key.
    Delete {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// Range scan: up to `limit` live entries with key >= `start`,
    /// merged across every shard.
    Scan {
        /// Inclusive start key.
        start: Vec<u8>,
        /// Maximum entries returned.
        limit: u32,
    },
    /// Batched point lookups; each shard resolves its keys against one
    /// pinned snapshot.
    MultiGet {
        /// Keys to look up, answered in order.
        keys: Vec<Vec<u8>>,
    },
    /// Liveness probe; never enters an admission queue.
    Ping,
    /// Server/shard statistics snapshot; never enters an admission queue.
    Stats,
}

impl Request {
    fn opcode(&self) -> u8 {
        match self {
            Request::Put { .. } => 1,
            Request::Get { .. } => 2,
            Request::Delete { .. } => 3,
            Request::Scan { .. } => 4,
            Request::MultiGet { .. } => 5,
            Request::Ping => 6,
            Request::Stats => 7,
        }
    }

    /// Stable label for metrics/report keys.
    pub fn label(&self) -> &'static str {
        match self {
            Request::Put { .. } => "put",
            Request::Get { .. } => "get",
            Request::Delete { .. } => "delete",
            Request::Scan { .. } => "scan",
            Request::MultiGet { .. } => "multi_get",
            Request::Ping => "ping",
            Request::Stats => "stats",
        }
    }
}

/// Outcome taxonomy carried in every response. Maps the engine's
/// transient/permanent error split onto the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Success.
    Ok,
    /// Admission control rejected the request: the target shard's queue
    /// was full. Retry after the hinted delay. Retryable.
    Overloaded,
    /// A transient storage fault (`SsdError::TransientIo`) exhausted the
    /// engine's retry budget. Retryable.
    TransientStorage,
    /// A permanent storage error (missing file, device full, hard I/O).
    Storage,
    /// On-disk data failed validation server-side.
    Corruption,
    /// The request was malformed at the engine level (empty key, ...).
    InvalidArgument,
    /// The store refuses the operation in its current state.
    InvalidState,
    /// The server could not parse the request frame.
    Protocol,
    /// The server is draining; no new work is admitted. Retryable
    /// against a replica, not against this process.
    ShuttingDown,
    /// The shard is a read-only replication follower; writes must go to
    /// the primary. Not retryable here.
    ReadOnly,
}

impl Status {
    /// Whether retrying the same request may succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Status::Overloaded | Status::TransientStorage | Status::ShuttingDown
        )
    }

    fn code(&self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Overloaded => 1,
            Status::TransientStorage => 2,
            Status::Storage => 3,
            Status::Corruption => 4,
            Status::InvalidArgument => 5,
            Status::InvalidState => 6,
            Status::Protocol => 7,
            Status::ShuttingDown => 8,
            Status::ReadOnly => 9,
        }
    }

    fn from_code(code: u8) -> Result<Status, ProtoError> {
        Ok(match code {
            0 => Status::Ok,
            1 => Status::Overloaded,
            2 => Status::TransientStorage,
            3 => Status::Storage,
            4 => Status::Corruption,
            5 => Status::InvalidArgument,
            6 => Status::InvalidState,
            7 => Status::Protocol,
            8 => Status::ShuttingDown,
            9 => Status::ReadOnly,
            other => return Err(ProtoError::BadStatus(other)),
        })
    }

    /// Stable snake_case label.
    pub fn label(&self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Overloaded => "overloaded",
            Status::TransientStorage => "transient_storage",
            Status::Storage => "storage",
            Status::Corruption => "corruption",
            Status::InvalidArgument => "invalid_argument",
            Status::InvalidState => "invalid_state",
            Status::Protocol => "protocol",
            Status::ShuttingDown => "shutting_down",
            Status::ReadOnly => "read_only",
        }
    }
}

/// One shard's admission/queue counters in a [`Request::Stats`] reply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStat {
    /// Requests admitted into this shard's queue since start.
    pub accepted: u64,
    /// Requests rejected because the queue was full.
    pub rejected: u64,
    /// Requests fully served.
    pub completed: u64,
    /// Current queue depth.
    pub depth: u32,
    /// Queue capacity (admission bound).
    pub capacity: u32,
    /// High-water queue depth observed.
    pub depth_high_water: u32,
}

/// Server statistics snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Per-shard counters, indexed by shard id.
    pub shards: Vec<ShardStat>,
    /// Malformed request frames the server answered with
    /// [`Status::Protocol`].
    pub protocol_errors: u64,
    /// Whether this process is a read-only replication follower.
    pub follower: bool,
    /// Follower only: stream records shipped by the primary but not yet
    /// applied here, as of the last tailing round.
    pub follower_lag: u64,
    /// Follower only: stream records applied over the store's lifetime
    /// (its durable replication cursor).
    pub follower_cursor: u64,
}

/// Result payload of a response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseBody {
    /// No payload (put/delete/ping acks, most errors).
    None,
    /// Get result.
    Value(Option<Vec<u8>>),
    /// Scan result entries, key-ordered.
    Entries(Vec<(Vec<u8>, Vec<u8>)>),
    /// MultiGet results, one per requested key, in request order.
    Values(Vec<Option<Vec<u8>>>),
    /// Stats snapshot.
    Stats(ServerStats),
    /// Overload hint: retry after this many milliseconds.
    RetryAfterMs(u32),
    /// Human-readable error detail for non-Ok statuses.
    Message(String),
}

/// A server → client reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Echoes the request id.
    pub req_id: u64,
    /// Outcome.
    pub status: Status,
    /// Shard that served the request ([`NO_SHARD`] when unrouted).
    pub shard: u16,
    /// Host nanoseconds the request sat in the admission queue.
    pub queue_ns: u64,
    /// Virtual engine nanoseconds spent serving the request
    /// (deterministic for a deterministic op sequence).
    pub service_ns: u64,
    /// Result payload.
    pub body: ResponseBody,
}

impl Response {
    /// A minimal error response for `req_id`.
    pub fn error(req_id: u64, status: Status, message: impl Into<String>) -> Self {
        Response {
            req_id,
            status,
            shard: NO_SHARD,
            queue_ns: 0,
            service_ns: 0,
            body: ResponseBody::Message(message.into()),
        }
    }
}

/// Structured decode failure. Every variant is a clean error — decoding
/// never panics and never over-allocates on hostile input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The body ended before a field's declared length.
    Truncated {
        /// Bytes the field needed.
        need: u64,
        /// Bytes remaining.
        have: u64,
    },
    /// A length prefix exceeded [`MAX_FRAME`].
    TooLarge {
        /// The declared length.
        len: u64,
    },
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Unknown status byte.
    BadStatus(u8),
    /// Bytes left over after a complete message.
    Trailing {
        /// Leftover byte count.
        extra: u64,
    },
    /// An error-message field was not UTF-8.
    BadUtf8,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated { need, have } => {
                write!(f, "truncated frame: field needs {need} bytes, {have} left")
            }
            ProtoError::TooLarge { len } => {
                write!(f, "length prefix {len} exceeds max frame {MAX_FRAME}")
            }
            ProtoError::BadOpcode(op) => write!(f, "unknown opcode {op}"),
            ProtoError::BadStatus(s) => write!(f, "unknown status {s}"),
            ProtoError::Trailing { extra } => write!(f, "{extra} trailing bytes after message"),
            ProtoError::BadUtf8 => write!(f, "error message is not utf-8"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Bounds-checked reader over a frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn bytes(&mut self, len: usize) -> Result<&'a [u8], ProtoError> {
        if len > MAX_FRAME as usize {
            return Err(ProtoError::TooLarge { len: len as u64 });
        }
        let end = self
            .pos
            .checked_add(len)
            .ok_or(ProtoError::TooLarge { len: len as u64 })?;
        let slice = self.buf.get(self.pos..end).ok_or(ProtoError::Truncated {
            need: len as u64,
            have: self.remaining() as u64,
        })?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn len_bytes(&mut self) -> Result<Vec<u8>, ProtoError> {
        let len = self.u32()?;
        Ok(self.bytes(len as usize)?.to_vec())
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.remaining() > 0 {
            return Err(ProtoError::Trailing {
                extra: self.remaining() as u64,
            });
        }
        Ok(())
    }
}

fn put_len_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Encodes a request body (without the frame length prefix).
pub fn encode_request(req_id: u64, request: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&req_id.to_le_bytes());
    out.push(request.opcode());
    match request {
        Request::Put { key, value } => {
            put_len_bytes(&mut out, key);
            put_len_bytes(&mut out, value);
        }
        Request::Get { key } | Request::Delete { key } => put_len_bytes(&mut out, key),
        Request::Scan { start, limit } => {
            put_len_bytes(&mut out, start);
            out.extend_from_slice(&limit.to_le_bytes());
        }
        Request::MultiGet { keys } => {
            out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
            for key in keys {
                put_len_bytes(&mut out, key);
            }
        }
        Request::Ping | Request::Stats => {}
    }
    out
}

/// Decodes a request body. Malformed input yields a [`ProtoError`].
pub fn decode_request(body: &[u8]) -> Result<(u64, Request), ProtoError> {
    let mut cur = Cursor::new(body);
    let req_id = cur.u64()?;
    let opcode = cur.u8()?;
    let request = match opcode {
        1 => Request::Put {
            key: cur.len_bytes()?,
            value: cur.len_bytes()?,
        },
        2 => Request::Get {
            key: cur.len_bytes()?,
        },
        3 => Request::Delete {
            key: cur.len_bytes()?,
        },
        4 => Request::Scan {
            start: cur.len_bytes()?,
            limit: cur.u32()?,
        },
        5 => {
            let count = cur.u32()?;
            // Each key costs at least 4 bytes of length prefix; a count
            // the remaining bytes cannot hold is a truncation, caught by
            // the per-key reads — but bound the allocation up front.
            let cap = (count as usize).min(cur.remaining() / 4 + 1);
            let mut keys = Vec::with_capacity(cap);
            for _ in 0..count {
                keys.push(cur.len_bytes()?);
            }
            Request::MultiGet { keys }
        }
        6 => Request::Ping,
        7 => Request::Stats,
        other => return Err(ProtoError::BadOpcode(other)),
    };
    cur.finish()?;
    Ok((req_id, request))
}

/// Encodes a response body (without the frame length prefix).
pub fn encode_response(response: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(40);
    out.extend_from_slice(&response.req_id.to_le_bytes());
    out.push(response.status.code());
    out.extend_from_slice(&response.shard.to_le_bytes());
    out.extend_from_slice(&response.queue_ns.to_le_bytes());
    out.extend_from_slice(&response.service_ns.to_le_bytes());
    match &response.body {
        ResponseBody::None => out.push(0),
        ResponseBody::Value(v) => {
            out.push(1);
            match v {
                None => out.push(0),
                Some(value) => {
                    out.push(1);
                    put_len_bytes(&mut out, value);
                }
            }
        }
        ResponseBody::Entries(entries) => {
            out.push(2);
            out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for (k, v) in entries {
                put_len_bytes(&mut out, k);
                put_len_bytes(&mut out, v);
            }
        }
        ResponseBody::Values(values) => {
            out.push(3);
            out.extend_from_slice(&(values.len() as u32).to_le_bytes());
            for v in values {
                match v {
                    None => out.push(0),
                    Some(value) => {
                        out.push(1);
                        put_len_bytes(&mut out, value);
                    }
                }
            }
        }
        ResponseBody::Stats(stats) => {
            out.push(4);
            out.extend_from_slice(&(stats.shards.len() as u32).to_le_bytes());
            for s in &stats.shards {
                out.extend_from_slice(&s.accepted.to_le_bytes());
                out.extend_from_slice(&s.rejected.to_le_bytes());
                out.extend_from_slice(&s.completed.to_le_bytes());
                out.extend_from_slice(&s.depth.to_le_bytes());
                out.extend_from_slice(&s.capacity.to_le_bytes());
                out.extend_from_slice(&s.depth_high_water.to_le_bytes());
            }
            out.extend_from_slice(&stats.protocol_errors.to_le_bytes());
            out.push(stats.follower as u8);
            out.extend_from_slice(&stats.follower_lag.to_le_bytes());
            out.extend_from_slice(&stats.follower_cursor.to_le_bytes());
        }
        ResponseBody::RetryAfterMs(ms) => {
            out.push(5);
            out.extend_from_slice(&ms.to_le_bytes());
        }
        ResponseBody::Message(msg) => {
            out.push(6);
            put_len_bytes(&mut out, msg.as_bytes());
        }
    }
    out
}

/// Decodes a response body. Malformed input yields a [`ProtoError`].
pub fn decode_response(body: &[u8]) -> Result<Response, ProtoError> {
    let mut cur = Cursor::new(body);
    let req_id = cur.u64()?;
    let status = Status::from_code(cur.u8()?)?;
    let shard = cur.u16()?;
    let queue_ns = cur.u64()?;
    let service_ns = cur.u64()?;
    let body = match cur.u8()? {
        0 => ResponseBody::None,
        1 => ResponseBody::Value(match cur.u8()? {
            0 => None,
            _ => Some(cur.len_bytes()?),
        }),
        2 => {
            let count = cur.u32()?;
            let cap = (count as usize).min(cur.remaining() / 8 + 1);
            let mut entries = Vec::with_capacity(cap);
            for _ in 0..count {
                let k = cur.len_bytes()?;
                let v = cur.len_bytes()?;
                entries.push((k, v));
            }
            ResponseBody::Entries(entries)
        }
        3 => {
            let count = cur.u32()?;
            let cap = (count as usize).min(cur.remaining() + 1);
            let mut values = Vec::with_capacity(cap);
            for _ in 0..count {
                values.push(match cur.u8()? {
                    0 => None,
                    _ => Some(cur.len_bytes()?),
                });
            }
            ResponseBody::Values(values)
        }
        4 => {
            let count = cur.u32()?;
            let cap = (count as usize).min(cur.remaining() / 36 + 1);
            let mut shards = Vec::with_capacity(cap);
            for _ in 0..count {
                shards.push(ShardStat {
                    accepted: cur.u64()?,
                    rejected: cur.u64()?,
                    completed: cur.u64()?,
                    depth: cur.u32()?,
                    capacity: cur.u32()?,
                    depth_high_water: cur.u32()?,
                });
            }
            let protocol_errors = cur.u64()?;
            let follower = cur.u8()? != 0;
            let follower_lag = cur.u64()?;
            let follower_cursor = cur.u64()?;
            ResponseBody::Stats(ServerStats {
                shards,
                protocol_errors,
                follower,
                follower_lag,
                follower_cursor,
            })
        }
        5 => ResponseBody::RetryAfterMs(cur.u32()?),
        6 => {
            let bytes = cur.len_bytes()?;
            ResponseBody::Message(String::from_utf8(bytes).map_err(|_| ProtoError::BadUtf8)?)
        }
        other => return Err(ProtoError::BadOpcode(other)),
    };
    cur.finish()?;
    Ok(Response {
        req_id,
        status,
        shard,
        queue_ns,
        service_ns,
        body,
    })
}

/// How a frame read ended without producing a frame.
#[derive(Debug)]
pub enum FrameError {
    /// Clean end of stream at a frame boundary.
    Eof,
    /// The stream ended mid-frame (a torn frame).
    TruncatedFrame {
        /// Bytes the frame still needed.
        need: u64,
    },
    /// The length prefix exceeded [`MAX_FRAME`].
    TooLarge {
        /// Declared body length.
        len: u64,
    },
    /// An I/O error from the transport.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "end of stream"),
            FrameError::TruncatedFrame { need } => {
                write!(f, "stream ended mid-frame ({need} bytes short)")
            }
            FrameError::TooLarge { len } => {
                write!(f, "frame length {len} exceeds max {MAX_FRAME}")
            }
            FrameError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame: 4-byte little-endian length, then the body.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)
}

/// Reads one frame body. [`FrameError::Eof`] means the peer closed the
/// stream cleanly between frames; EOF anywhere else is a torn frame.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 {
                    FrameError::Eof
                } else {
                    FrameError::TruncatedFrame {
                        need: (4 - filled) as u64,
                    }
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge {
            len: u64::from(len),
        });
    }
    let mut body = vec![0u8; len as usize];
    let mut got = 0usize;
    while got < body.len() {
        match r.read(&mut body[got..]) {
            Ok(0) => {
                return Err(FrameError::TruncatedFrame {
                    need: (body.len() - got) as u64,
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let body = encode_request(42, &req);
        let (id, back) = decode_request(&body).unwrap();
        assert_eq!(id, 42);
        assert_eq!(back, req);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Put {
            key: b"k".to_vec(),
            value: b"v".to_vec(),
        });
        roundtrip_req(Request::Get { key: b"k".to_vec() });
        roundtrip_req(Request::Delete { key: Vec::new() });
        roundtrip_req(Request::Scan {
            start: b"a".to_vec(),
            limit: 100,
        });
        roundtrip_req(Request::MultiGet {
            keys: vec![b"a".to_vec(), Vec::new(), b"ccc".to_vec()],
        });
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Stats);
    }

    #[test]
    fn response_roundtrips() {
        let cases = vec![
            ResponseBody::None,
            ResponseBody::Value(None),
            ResponseBody::Value(Some(b"v".to_vec())),
            ResponseBody::Entries(vec![(b"k".to_vec(), b"v".to_vec())]),
            ResponseBody::Values(vec![None, Some(b"x".to_vec())]),
            ResponseBody::Stats(ServerStats {
                shards: vec![ShardStat {
                    accepted: 10,
                    rejected: 2,
                    completed: 8,
                    depth: 1,
                    capacity: 64,
                    depth_high_water: 5,
                }],
                protocol_errors: 3,
                follower: true,
                follower_lag: 7,
                follower_cursor: 42,
            }),
            ResponseBody::RetryAfterMs(25),
            ResponseBody::Message("storage: io error".to_string()),
        ];
        for body in cases {
            let resp = Response {
                req_id: 7,
                status: Status::Ok,
                shard: 3,
                queue_ns: 123,
                service_ns: 456,
                body,
            };
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn truncated_bodies_are_clean_errors() {
        let body = encode_request(
            1,
            &Request::Put {
                key: b"key".to_vec(),
                value: b"value".to_vec(),
            },
        );
        for cut in 0..body.len() {
            let err = decode_request(&body[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes decoded successfully");
        }
        let resp = encode_response(&Response::error(9, Status::Storage, "boom"));
        for cut in 0..resp.len() {
            assert!(decode_response(&resp[..cut]).is_err());
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut body = encode_request(1, &Request::Ping);
        body.push(0xFF);
        assert!(matches!(
            decode_request(&body),
            Err(ProtoError::Trailing { extra: 1 })
        ));
    }

    #[test]
    fn bad_opcode_and_status() {
        let mut body = encode_request(1, &Request::Ping);
        body[8] = 200;
        assert!(matches!(
            decode_request(&body),
            Err(ProtoError::BadOpcode(200))
        ));
        let mut resp = encode_response(&Response::error(1, Status::Ok, ""));
        resp[8] = 99;
        assert!(matches!(
            decode_response(&resp),
            Err(ProtoError::BadStatus(99))
        ));
    }

    #[test]
    fn oversized_length_prefix_is_protocol_error_not_alloc() {
        // A MultiGet claiming u32::MAX keys must fail without trying to
        // reserve that much.
        let mut body = Vec::new();
        body.extend_from_slice(&1u64.to_le_bytes());
        body.push(5); // MultiGet
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_request(&body).is_err());
    }

    #[test]
    fn frame_io_roundtrip_and_torn_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = std::io::Cursor::new(buf.clone());
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(matches!(read_frame(&mut r), Err(FrameError::Eof)));

        // Every strict prefix that cuts a frame is torn, not Eof.
        for cut in 1..buf.len() {
            let mut r = std::io::Cursor::new(buf[..cut].to_vec());
            let mut saw_torn = false;
            loop {
                match read_frame(&mut r) {
                    Ok(_) => continue,
                    Err(FrameError::Eof) => break,
                    Err(FrameError::TruncatedFrame { .. }) => {
                        saw_torn = true;
                        break;
                    }
                    Err(e) => panic!("unexpected {e}"),
                }
            }
            // cut == 9 lands exactly between the two frames: clean Eof.
            let boundary = cut == 4 + 5;
            assert_eq!(saw_torn, !boundary, "cut at {cut}");
        }
    }

    #[test]
    fn oversized_frame_length_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let mut r = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn retryable_statuses() {
        assert!(Status::Overloaded.is_retryable());
        assert!(Status::TransientStorage.is_retryable());
        assert!(Status::ShuttingDown.is_retryable());
        for s in [
            Status::Ok,
            Status::Storage,
            Status::Corruption,
            Status::InvalidArgument,
            Status::InvalidState,
            Status::Protocol,
            Status::ReadOnly,
        ] {
            assert!(!s.is_retryable(), "{s:?}");
        }
    }

    #[test]
    fn read_only_status_roundtrips() {
        assert_eq!(Status::ReadOnly.label(), "read_only");
        let resp = Response::error(7, Status::ReadOnly, "follower shard refuses writes");
        let decoded = decode_response(&encode_response(&resp)).unwrap();
        assert_eq!(decoded, resp);
    }
}
